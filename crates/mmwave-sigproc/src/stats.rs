//! Statistics used by the evaluation harness: moments, percentiles, CDFs,
//! error metrics, BER counting and the Gaussian Q-function for analytic
//! bit-error-rate curves.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Unbiased sample variance (n−1 denominator). `NaN` for fewer than two
/// samples.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return f64::NAN;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root-mean-square of a slice.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Root-mean-square error between paired samples.
///
/// # Panics
/// Panics on length mismatch.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    if a.is_empty() {
        return f64::NAN;
    }
    let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (s / a.len() as f64).sqrt()
}

/// Mean absolute error between paired samples.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mae: length mismatch");
    if a.is_empty() {
        return f64::NAN;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Percentile via linear interpolation on the sorted data (the
/// "inclusive"/NIST method). `p` in `[0, 100]`.
///
/// # Panics
/// Panics if `x` is empty or `p` is out of range.
pub fn percentile(x: &[f64], p: f64) -> f64 {
    assert!(!x.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut v = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(x: &[f64]) -> f64 {
    percentile(x, 50.0)
}

/// Empirical CDF evaluated at each sorted sample: returns `(value, F(value))`
/// pairs suitable for plotting (the Fig 12b angle-error CDF).
pub fn empirical_cdf(x: &[f64]) -> Vec<(f64, f64)> {
    let mut v = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, val)| (val, (i + 1) as f64 / n))
        .collect()
}

/// Summary of a batch of trial errors: what the paper's error-bar plots show.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Mean absolute error.
    pub mean: f64,
    /// Sample standard deviation of the absolute error.
    pub std_dev: f64,
    /// Median absolute error.
    pub median: f64,
    /// 90th-percentile absolute error.
    pub p90: f64,
    /// Maximum absolute error observed.
    pub max: f64,
}

impl ErrorSummary {
    /// Aggregates a slice of (already absolute) error samples.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn from_abs_errors(errors: &[f64]) -> Self {
        assert!(!errors.is_empty(), "no error samples");
        Self {
            trials: errors.len(),
            mean: mean(errors),
            std_dev: if errors.len() > 1 {
                std_dev(errors)
            } else {
                0.0
            },
            median: median(errors),
            p90: percentile(errors, 90.0),
            max: errors.iter().cloned().fold(f64::MIN, f64::max),
        }
    }

    /// Aggregates signed errors by taking absolute values first.
    pub fn from_signed_errors(errors: &[f64]) -> Self {
        let abs: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        Self::from_abs_errors(&abs)
    }
}

/// Counts bit errors between two equal-length bit vectors.
///
/// # Panics
/// Panics on length mismatch.
pub fn count_bit_errors(tx: &[bool], rx: &[bool]) -> usize {
    assert_eq!(tx.len(), rx.len(), "bit streams differ in length");
    tx.iter().zip(rx).filter(|(a, b)| a != b).count()
}

/// Bit error rate between two bit vectors (`NaN` when empty).
pub fn bit_error_rate(tx: &[bool], rx: &[bool]) -> f64 {
    if tx.is_empty() {
        return f64::NAN;
    }
    count_bit_errors(tx, rx) as f64 / tx.len() as f64
}

/// Complementary error function, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (|error| < 1.5e-7), extended to negative arguments.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// Gaussian Q-function: `Q(x) = P(N(0,1) > x)`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Analytic BER of coherent OOK / unipolar binary signalling with threshold
/// midway between levels: `Q(√(SNR)/2)` where `snr_linear` is the ratio of
/// peak signal power to noise power.
///
/// This is the per-tone decision model for OAQFM: each tone is an
/// independent OOK channel, so the OAQFM bit error rate equals this.
pub fn ook_ber(snr_linear: f64) -> f64 {
    q_function((snr_linear).sqrt() / 2.0)
}

/// Analytic BER of non-coherent envelope-detected OOK, the decision the
/// node's MCU makes on the envelope-detector output:
/// `0.5·exp(−SNR/8) + Q(√(SNR)/2)/2` (standard approximation).
pub fn noncoherent_ook_ber(snr_linear: f64) -> f64 {
    0.5 * (-snr_linear / 8.0).exp().min(1.0) * 0.5 + 0.5 * q_function(snr_linear.sqrt() / 2.0)
}

/// Linear interpolation over a monotonically-increasing x grid.
///
/// Values outside the grid are clamped to the end values.
///
/// # Panics
/// Panics if the grids are empty or mismatched in length.
pub fn interp1(x_grid: &[f64], y_grid: &[f64], x: f64) -> f64 {
    assert!(!x_grid.is_empty() && x_grid.len() == y_grid.len());
    if x <= x_grid[0] {
        return y_grid[0];
    }
    if x >= *x_grid.last().unwrap() {
        return *y_grid.last().unwrap();
    }
    let mut i = 0;
    while x_grid[i + 1] < x {
        i += 1;
    }
    let frac = (x - x_grid[i]) / (x_grid[i + 1] - x_grid[i]);
    y_grid[i] * (1.0 - frac) + y_grid[i + 1] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_reference() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance is 4*8/7.
        assert!((variance(&x) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_yield_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(rms(&[]).is_nan());
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[3.0, 3.0, -3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_and_mae() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 1.0];
        assert!((rmse(&a, &b) - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&a, &b) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&a, &a)).abs() < 1e-15);
    }

    #[test]
    fn percentile_interpolates() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&x, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&x, 100.0) - 4.0).abs() < 1e-12);
        assert!((median(&x) - 2.5).abs() < 1e-12);
        assert!((percentile(&x, 90.0) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = [5.0, 1.0, 3.0];
        let b = [1.0, 3.0, 5.0];
        assert_eq!(percentile(&a, 50.0), percentile(&b, 50.0));
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let x = [0.3, 0.1, 0.7, 0.5];
        let cdf = empirical_cdf(&x);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn error_summary_fields() {
        let e = [1.0, 2.0, 3.0, 4.0, 10.0];
        let s = ErrorSummary::from_abs_errors(&e);
        assert_eq!(s.trials, 5);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.max - 10.0).abs() < 1e-12);
        assert!(s.p90 > 4.0 && s.p90 < 10.0 + 1e-9);
    }

    #[test]
    fn error_summary_from_signed() {
        let s = ErrorSummary::from_signed_errors(&[-2.0, 2.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ber_counting() {
        let tx = [true, false, true, true];
        let rx = [true, true, true, false];
        assert_eq!(count_bit_errors(&tx, &rx), 2);
        assert!((bit_error_rate(&tx, &rx) - 0.5).abs() < 1e-12);
        assert!(bit_error_rate(&[], &[]).is_nan());
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn q_function_reference_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-9);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-5);
        assert!((q_function(3.0) - 1.349_9e-3).abs() < 1e-6);
    }

    #[test]
    fn ook_ber_monotone_in_snr() {
        let mut prev = 1.0;
        for snr_db in [0.0, 5.0, 10.0, 15.0, 20.0] {
            let snr = 10f64.powf(snr_db / 10.0);
            let ber = ook_ber(snr);
            assert!(ber < prev, "BER should fall with SNR");
            prev = ber;
        }
    }

    #[test]
    fn ook_ber_at_high_snr_is_tiny() {
        // ~22 dB SNR → BER below 1e-8 (the Fig 14 threshold annotation).
        let ber = ook_ber(10f64.powf(22.0 / 10.0));
        assert!(ber < 1e-8, "ber {ber}");
    }

    #[test]
    fn noncoherent_worse_than_coherent() {
        for snr_db in [6.0, 10.0, 14.0] {
            let snr = 10f64.powf(snr_db / 10.0);
            assert!(noncoherent_ook_ber(snr) >= ook_ber(snr));
        }
    }

    #[test]
    fn interp1_basics() {
        let xg = [0.0, 1.0, 2.0];
        let yg = [0.0, 10.0, 40.0];
        assert!((interp1(&xg, &yg, 0.5) - 5.0).abs() < 1e-12);
        assert!((interp1(&xg, &yg, 1.5) - 25.0).abs() < 1e-12);
        assert_eq!(interp1(&xg, &yg, -1.0), 0.0);
        assert_eq!(interp1(&xg, &yg, 3.0), 40.0);
    }
}
