//! Fast Fourier transforms, implemented from scratch.
//!
//! Provides an iterative radix-2 Cooley–Tukey FFT for power-of-two lengths
//! and Bluestein's chirp-z algorithm for arbitrary lengths, so callers never
//! need to care whether their chirp happens to contain 2ᵏ samples. A small
//! plan cache keeps twiddle factors across calls because the FMCW pipeline
//! transforms thousands of equal-length chirps.

use crate::complex::{Complex, ZERO};
use std::f64::consts::PI;

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT: `X[k] = Σ x[n]·e^{-j2πkn/N}`.
    Forward,
    /// Inverse DFT, normalized by `1/N`.
    Inverse,
}

/// A reusable FFT plan for a fixed length.
///
/// Construction precomputes twiddle factors (and, for non-power-of-two
/// lengths, the Bluestein chirp and its transformed filter), so repeated
/// transforms of equal-length buffers only pay the butterfly cost.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug, Clone)]
enum PlanKind {
    /// Radix-2: bit-reversal permutation table plus per-stage twiddles.
    Radix2 { rev: Vec<u32>, twiddles: Vec<Complex> },
    /// Bluestein: embed length-n DFT into a length-m (power of two ≥ 2n-1)
    /// circular convolution.
    Bluestein {
        m: usize,
        inner: Box<FftPlan>,
        /// `e^{-jπ n²/N}` chirp, length n.
        chirp: Vec<Complex>,
        /// Forward FFT of the zero-padded conjugate chirp filter, length m.
        filter_fft: Vec<Complex>,
    },
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        if n.is_power_of_two() {
            let bits = n.trailing_zeros();
            let rev = (0..n as u32)
                .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
                .collect::<Vec<_>>();
            // Twiddles for the largest stage; smaller stages stride through.
            let twiddles = (0..n / 2)
                .map(|k| Complex::cis(-2.0 * PI * k as f64 / n as f64))
                .collect();
            Self { n, kind: PlanKind::Radix2 { rev, twiddles } }
        } else {
            let m = (2 * n - 1).next_power_of_two();
            let inner = Box::new(FftPlan::new(m));
            let chirp: Vec<Complex> = (0..n)
                .map(|k| {
                    // Use i128 to keep k² exact; reduce mod 2n to bound the
                    // angle and preserve precision for large n.
                    let k2 = (k as i128 * k as i128) % (2 * n as i128);
                    Complex::cis(-PI * k2 as f64 / n as f64)
                })
                .collect();
            let mut filt = vec![ZERO; m];
            filt[0] = chirp[0].conj();
            for k in 1..n {
                filt[k] = chirp[k].conj();
                filt[m - k] = chirp[k].conj();
            }
            inner.process(&mut filt, Direction::Forward);
            Self { n, kind: PlanKind::Bluestein { m, inner, chirp, filter_fft: filt } }
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the plan length is zero (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transforms `buf` in place.
    ///
    /// # Panics
    /// Panics if `buf.len()` differs from the plan length.
    pub fn process(&self, buf: &mut [Complex], dir: Direction) {
        assert_eq!(buf.len(), self.n, "buffer length does not match plan");
        match &self.kind {
            PlanKind::Radix2 { rev, twiddles } => {
                if self.n == 1 {
                    return;
                }
                // Conjugate trick for the inverse transform.
                if dir == Direction::Inverse {
                    for z in buf.iter_mut() {
                        *z = z.conj();
                    }
                }
                for (i, &r) in rev.iter().enumerate() {
                    let r = r as usize;
                    if i < r {
                        buf.swap(i, r);
                    }
                }
                let n = self.n;
                let mut len = 2;
                while len <= n {
                    let stride = n / len;
                    let half = len / 2;
                    for start in (0..n).step_by(len) {
                        for k in 0..half {
                            let w = twiddles[k * stride];
                            let a = buf[start + k];
                            let b = buf[start + k + half] * w;
                            buf[start + k] = a + b;
                            buf[start + k + half] = a - b;
                        }
                    }
                    len <<= 1;
                }
                if dir == Direction::Inverse {
                    let inv_n = 1.0 / n as f64;
                    for z in buf.iter_mut() {
                        *z = z.conj().scale(inv_n);
                    }
                }
            }
            PlanKind::Bluestein { m, inner, chirp, filter_fft } => {
                if dir == Direction::Inverse {
                    for z in buf.iter_mut() {
                        *z = z.conj();
                    }
                }
                let mut a = vec![ZERO; *m];
                for k in 0..self.n {
                    a[k] = buf[k] * chirp[k];
                }
                inner.process(&mut a, Direction::Forward);
                for (x, &f) in a.iter_mut().zip(filter_fft.iter()) {
                    *x = *x * f;
                }
                inner.process(&mut a, Direction::Inverse);
                for k in 0..self.n {
                    buf[k] = a[k] * chirp[k];
                }
                if dir == Direction::Inverse {
                    let inv_n = 1.0 / self.n as f64;
                    for z in buf.iter_mut() {
                        *z = z.conj().scale(inv_n);
                    }
                }
            }
        }
    }
}

/// One-shot forward FFT of a complex slice (any length).
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    FftPlan::new(x.len()).process(&mut buf, Direction::Forward);
    buf
}

/// One-shot inverse FFT (normalized by `1/N`).
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    FftPlan::new(x.len()).process(&mut buf, Direction::Inverse);
    buf
}

/// Forward FFT of a real signal; returns the full complex spectrum.
pub fn rfft(x: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = x.iter().map(|&r| Complex::real(r)).collect();
    fft(&buf)
}

/// The frequency in Hz associated with each FFT bin, given the sample rate.
///
/// Bins `0..N/2` map to non-negative frequencies; bins above `N/2` map to
/// negative frequencies, matching the layout of [`fft`] output.
pub fn fft_frequencies(n: usize, sample_rate: f64) -> Vec<f64> {
    let df = sample_rate / n as f64;
    (0..n)
        .map(|k| {
            if k <= n / 2 {
                k as f64 * df
            } else {
                (k as f64 - n as f64) * df
            }
        })
        .collect()
}

/// Reorders a spectrum so the zero-frequency bin sits in the middle.
pub fn fftshift<T: Copy>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// Zero-pads `x` to length `n` (returns a copy; `n >= x.len()`).
///
/// # Panics
/// Panics if `n < x.len()`.
pub fn zero_pad(x: &[Complex], n: usize) -> Vec<Complex> {
    assert!(n >= x.len(), "zero_pad target shorter than input");
    let mut out = x.to_vec();
    out.resize(n, ZERO);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::from_real;

    /// Naive O(N²) DFT used as the reference implementation.
    fn dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| x[t] * Complex::cis(-2.0 * PI * (k * t) as f64 / n as f64))
                    .sum()
            })
            .collect()
    }

    fn assert_spectra_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (*x - *y).norm() < tol,
                "spectra differ: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        assert_spectra_close(&fft(&x), &dft(&x), 1e-9);
    }

    #[test]
    fn matches_naive_dft_arbitrary_lengths() {
        for n in [1usize, 2, 3, 5, 6, 7, 12, 15, 17, 100, 243] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).cos(), (i as f64 * 1.3).sin()))
                .collect();
            assert_spectra_close(&fft(&x), &dft(&x), 1e-8 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn inverse_recovers_signal() {
        for n in [8usize, 11, 64, 100] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
                .collect();
            let y = ifft(&fft(&x));
            assert_spectra_close(&y, &x, 1e-8 * n as f64);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![ZERO; 16];
        x[0] = Complex::real(1.0);
        let y = fft(&x);
        for z in y {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let x = vec![Complex::real(2.0); 32];
        let y = fft(&x);
        assert!((y[0].re - 64.0).abs() < 1e-9);
        for z in &y[1..] {
            assert!(z.norm() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_lands_in_expected_bin() {
        let n = 128;
        let k0 = 9;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * PI * (k0 * t) as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, z) in y.iter().enumerate() {
            if k == k0 {
                assert!((z.norm() - n as f64).abs() < 1e-8);
            } else {
                assert!(z.norm() < 1e-8, "leakage in bin {k}");
            }
        }
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.9).sin() + 0.3).collect();
        let y = rfft(&x);
        let n = y.len();
        for k in 1..n {
            let a = y[k];
            let b = y[n - k].conj();
            assert!((a - b).norm() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> = (0..50)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let y = fft(&x);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((e_time - e_freq).abs() < 1e-8 * e_time);
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = FftPlan::new(33);
        let x: Vec<Complex> = (0..33).map(|i| Complex::real(i as f64)).collect();
        let mut a = x.clone();
        plan.process(&mut a, Direction::Forward);
        let mut b = x.clone();
        plan.process(&mut b, Direction::Forward);
        assert_spectra_close(&a, &b, 0.0_f64.max(1e-12));
        assert_eq!(plan.len(), 33);
        assert!(!plan.is_empty());
    }

    #[test]
    fn fft_frequencies_layout() {
        let f = fft_frequencies(8, 8000.0);
        assert_eq!(f, vec![0.0, 1000.0, 2000.0, 3000.0, 4000.0, -3000.0, -2000.0, -1000.0]);
    }

    #[test]
    fn fftshift_centers_dc() {
        let x = [0, 1, 2, 3, 4, 5, 6, 7];
        assert_eq!(fftshift(&x), vec![4, 5, 6, 7, 0, 1, 2, 3]);
        let odd = [0, 1, 2, 3, 4];
        assert_eq!(fftshift(&odd), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn zero_pad_extends() {
        let x = from_real(&[1.0, 2.0]);
        let y = zero_pad(&x, 4);
        assert_eq!(y.len(), 4);
        assert_eq!(y[2], ZERO);
    }

    #[test]
    #[should_panic(expected = "buffer length does not match plan")]
    fn plan_rejects_wrong_length() {
        let plan = FftPlan::new(8);
        let mut buf = vec![ZERO; 7];
        plan.process(&mut buf, Direction::Forward);
    }

    #[test]
    fn length_one_transform_is_identity() {
        let x = vec![Complex::new(3.0, -2.0)];
        assert_eq!(fft(&x)[0], x[0]);
        assert_eq!(ifft(&x)[0], x[0]);
    }
}
