//! Fast Fourier transforms, implemented from scratch.
//!
//! Provides a Stockham autosort FFT (mixed radix 4/2) for power-of-two
//! lengths and Bluestein's chirp-z algorithm for arbitrary lengths, so
//! callers never need to care whether their chirp happens to contain 2ᵏ
//! samples.
//!
//! Three layers keep the hot FMCW paths fast and allocation-free:
//!
//! * [`FftPlanner`] caches one [`FftPlan`] per length behind a process-wide
//!   mutex with a thread-local fast path, so the one-shot helpers ([`fft`],
//!   [`ifft`], [`rfft`]) pay twiddle precomputation once per length instead
//!   of once per call.
//! * [`FftPlan::process_with_scratch`] and [`FftPlan::process_many`] run
//!   transforms — including the Bluestein convolution — without any per-call
//!   heap allocation; the one-shot helpers reuse a thread-local scratch.
//! * The kernel is planar: the interleaved `Complex` buffer is split into
//!   separate re/im planes inside the scratch, every butterfly becomes an
//!   elementwise `f64` loop the compiler can vectorize, and the Stockham
//!   ping-pong between planes removes the bit-reversal pass entirely.

use crate::complex::{Complex, ZERO};
use std::cell::RefCell;
use std::f64::consts::PI;
use std::sync::Arc;

use parking_lot::Mutex;

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT: `X[k] = Σ x[n]·e^{-j2πkn/N}`.
    Forward,
    /// Inverse DFT, normalized by `1/N`.
    Inverse,
}

/// A reusable FFT plan for a fixed length.
///
/// Construction precomputes twiddle factors (and, for non-power-of-two
/// lengths, the Bluestein chirp and its transformed filter), so repeated
/// transforms of equal-length buffers only pay the butterfly cost. Plans are
/// cheap to share: [`FftPlanner::plan`] returns `Arc<FftPlan>` and plans are
/// `Send + Sync`, so worker threads can transform concurrently, each with
/// its own scratch.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug, Clone)]
enum PlanKind {
    /// Power of two: Stockham autosort kernel, mixed radix 4/2.
    /// `base[k] = e^{-j2πk/n}` for `k < n/2`; every stage twiddle is a
    /// strided read (or exact negation, via the half-period symmetry) of
    /// this one table. `w2f`/`w3f` pack the first radix-4 stage's `w^{2p}`
    /// and `w^{3p}` twiddles contiguously (built only when that stage
    /// exists, i.e. log₂(n) even and n ≥ 16) so its single long loop reads
    /// every operand at unit stride.
    Pow2 {
        base: Vec<Complex>,
        w2f: Vec<Complex>,
        w3f: Vec<Complex>,
    },
    /// Bluestein: embed length-n DFT into a length-m (power of two ≥ 2n-1)
    /// circular convolution. The inner power-of-two plan comes from the
    /// planner cache, so every Bluestein length shares one copy of it.
    /// Chirp and filter live as re/im planes to match the planar kernel.
    Bluestein {
        m: usize,
        inner: Arc<FftPlan>,
        /// `e^{-jπ k²/n}` chirp, length n, split into planes.
        chirp_re: Vec<f64>,
        chirp_im: Vec<f64>,
        /// Forward FFT of the zero-padded conjugate chirp filter, length m.
        filter_re: Vec<f64>,
        filter_im: Vec<f64>,
    },
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        if n.is_power_of_two() {
            let base: Vec<Complex> = (0..n / 2)
                .map(|k| Complex::cis(-2.0 * PI * k as f64 / n as f64))
                .collect();
            let (w2f, w3f) = if n >= 16 && n.trailing_zeros().is_multiple_of(2) {
                let m = n / 4;
                let half = n / 2;
                let w2f = (0..m).map(|p| base[2 * p]).collect();
                let w3f = (0..m)
                    .map(|p| {
                        let i = 3 * p;
                        if i < half {
                            base[i]
                        } else {
                            -base[i - half]
                        }
                    })
                    .collect();
                (w2f, w3f)
            } else {
                (Vec::new(), Vec::new())
            };
            Self {
                n,
                kind: PlanKind::Pow2 { base, w2f, w3f },
            }
        } else {
            let m = (2 * n - 1).next_power_of_two();
            let inner = FftPlanner::plan(m);
            let chirp: Vec<Complex> = (0..n)
                .map(|k| {
                    // Use i128 to keep k² exact; reduce mod 2n to bound the
                    // angle and preserve precision for large n.
                    let k2 = (k as i128 * k as i128) % (2 * n as i128);
                    Complex::cis(-PI * k2 as f64 / n as f64)
                })
                .collect();
            let mut filter_re = vec![0.0; m];
            let mut filter_im = vec![0.0; m];
            filter_re[0] = chirp[0].re;
            filter_im[0] = -chirp[0].im;
            for k in 1..n {
                let c = chirp[k].conj();
                filter_re[k] = c.re;
                filter_im[k] = c.im;
                filter_re[m - k] = c.re;
                filter_im[m - k] = c.im;
            }
            let inner_base = inner.pow2_base();
            let mut work = vec![0.0; 2 * m];
            let (wre, wim) = work.split_at_mut(m);
            let stages = planar_fft(&mut filter_re, &mut filter_im, wre, wim, inner_base);
            if stages % 2 == 1 {
                filter_re.copy_from_slice(wre);
                filter_im.copy_from_slice(wim);
            }
            let chirp_re: Vec<f64> = chirp.iter().map(|c| c.re).collect();
            let chirp_im: Vec<f64> = chirp.iter().map(|c| c.im).collect();
            Self {
                n,
                kind: PlanKind::Bluestein {
                    m,
                    inner,
                    chirp_re,
                    chirp_im,
                    filter_re,
                    filter_im,
                },
            }
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the plan length is zero (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Scratch length (in `f64`s) required by [`Self::process_with_scratch`].
    ///
    /// `4n` for power-of-two plans (two re/im plane pairs for the Stockham
    /// ping-pong), `4m` for Bluestein plans (the planar length-`m`
    /// convolution workspace plus the inner plan's second plane pair).
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            PlanKind::Pow2 { .. } => {
                if self.n == 1 {
                    0
                } else {
                    4 * self.n
                }
            }
            PlanKind::Bluestein { m, .. } => 4 * m,
        }
    }

    /// Transforms `buf` in place.
    ///
    /// Convenience wrapper over [`Self::process_with_scratch`] that
    /// allocates the scratch. Hot loops should hold a buffer of
    /// [`Self::scratch_len`] and call the scratch variant; one-shot callers
    /// should prefer [`fft`]/[`ifft`], which reuse a thread-local scratch.
    ///
    /// # Panics
    /// Panics if `buf.len()` differs from the plan length.
    pub fn process(&self, buf: &mut [Complex], dir: Direction) {
        let mut scratch = vec![0.0; self.scratch_len()];
        self.process_with_scratch(buf, &mut scratch, dir);
    }

    /// Transforms `buf` in place without allocating.
    ///
    /// `scratch` must hold at least [`Self::scratch_len`] elements; its
    /// contents on entry are irrelevant and unspecified on exit.
    ///
    /// # Panics
    /// Panics if `buf.len()` differs from the plan length or `scratch` is
    /// shorter than [`Self::scratch_len`].
    pub fn process_with_scratch(&self, buf: &mut [Complex], scratch: &mut [f64], dir: Direction) {
        assert_eq!(buf.len(), self.n, "buffer length does not match plan");
        assert!(
            scratch.len() >= self.scratch_len(),
            "scratch too short: {} < {}",
            scratch.len(),
            self.scratch_len()
        );
        let n = self.n;
        match &self.kind {
            PlanKind::Pow2 { base, w2f, w3f } => {
                if n == 1 {
                    return;
                }
                let inverse = dir == Direction::Inverse;
                let (re, rest) = scratch.split_at_mut(n);
                let (im, rest) = rest.split_at_mut(n);
                let (wre, rest) = rest.split_at_mut(n);
                let wim = &mut rest[..n];
                if n < 8 {
                    // Too short for the fused first/last stages to be
                    // distinct; deinterleave, run the generic planar
                    // kernel, re-interleave. The conjugate trick folds the
                    // inverse's conjugations into the copies.
                    for ((r, i), z) in re.iter_mut().zip(im.iter_mut()).zip(buf.iter()) {
                        *r = z.re;
                        *i = if inverse { -z.im } else { z.im };
                    }
                    let stages = planar_fft(re, im, wre, wim, base);
                    let (fre, fim) = if stages.is_multiple_of(2) {
                        (&*re, &*im)
                    } else {
                        (&*wre, &*wim)
                    };
                    let inv_n = 1.0 / n as f64;
                    for ((z, r), i) in buf.iter_mut().zip(fre).zip(fim) {
                        *z = if inverse {
                            Complex::new(*r * inv_n, -*i * inv_n)
                        } else {
                            Complex::new(*r, *i)
                        };
                    }
                    return;
                }
                // Fused pipeline: the first stage reads the interleaved
                // buffer directly (folding in the deinterleave and the
                // inverse's pre-conjugation), middle stages ping-pong
                // between the planar pairs, and the twiddle-free last stage
                // writes straight back to the buffer (folding in the
                // re-interleave plus the inverse's post-conjugation and
                // normalization).
                let (mut sre, mut sim, mut dre, mut dim) = (re, im, wre, wim);
                let mut n_t = n;
                let mut s = 1;
                if n.trailing_zeros() % 2 == 1 {
                    fused_first_r2(buf, sre, sim, base, inverse);
                    n_t /= 2;
                    s *= 2;
                } else {
                    fused_first_r4(buf, sre, sim, base, w2f, w3f, inverse);
                    n_t /= 4;
                    s *= 4;
                }
                while n_t >= 16 {
                    radix4_stage(sre, sim, dre, dim, base, n_t, s);
                    std::mem::swap(&mut sre, &mut dre);
                    std::mem::swap(&mut sim, &mut dim);
                    n_t /= 4;
                    s *= 4;
                }
                debug_assert_eq!(n_t, 4);
                fused_last_r4(sre, sim, buf, inverse);
            }
            PlanKind::Bluestein {
                m,
                inner,
                chirp_re,
                chirp_im,
                filter_re,
                filter_im,
            } => {
                let m = *m;
                let (are, rest) = scratch.split_at_mut(m);
                let (aim, rest) = rest.split_at_mut(m);
                let (wre, rest) = rest.split_at_mut(m);
                let wim = &mut rest[..m];
                // a[k] = x[k]·chirp[k] (x conjugated first for the inverse),
                // zero-padded to m.
                match dir {
                    Direction::Forward => {
                        for k in 0..n {
                            let z = buf[k];
                            let (r, i) = cmul(z.re, z.im, chirp_re[k], chirp_im[k]);
                            are[k] = r;
                            aim[k] = i;
                        }
                    }
                    Direction::Inverse => {
                        for k in 0..n {
                            let z = buf[k];
                            let (r, i) = cmul(z.re, -z.im, chirp_re[k], chirp_im[k]);
                            are[k] = r;
                            aim[k] = i;
                        }
                    }
                }
                are[n..].fill(0.0);
                aim[n..].fill(0.0);
                let base = inner.pow2_base();
                // Forward inner FFT.
                let stages = planar_fft(are, aim, wre, wim, base);
                let ((cre, cim), (ore, oim)) = if stages.is_multiple_of(2) {
                    ((&mut *are, &mut *aim), (&mut *wre, &mut *wim))
                } else {
                    ((&mut *wre, &mut *wim), (&mut *are, &mut *aim))
                };
                // Pointwise filter, fused with the conjugation that starts
                // the inverse inner FFT: c ← conj(c·filter).
                for k in 0..m {
                    let (re, im) = cmul(cre[k], cim[k], filter_re[k], filter_im[k]);
                    cre[k] = re;
                    cim[k] = -im;
                }
                let stages = planar_fft(cre, cim, ore, oim, base);
                let (fre, fim) = if stages.is_multiple_of(2) {
                    (&*cre, &*cim)
                } else {
                    (&*ore, &*oim)
                };
                // Undo the inner conjugation (fold its 1/m and the outer
                // chirp multiply into one pass); conjugate/normalize once
                // more for an inverse outer transform.
                let inv_m = 1.0 / m as f64;
                match dir {
                    Direction::Forward => {
                        for k in 0..n {
                            let (r, i) =
                                cmul(fre[k] * inv_m, -fim[k] * inv_m, chirp_re[k], chirp_im[k]);
                            buf[k] = Complex::new(r, i);
                        }
                    }
                    Direction::Inverse => {
                        let inv_n = 1.0 / n as f64;
                        for k in 0..n {
                            let (r, i) =
                                cmul(fre[k] * inv_m, -fim[k] * inv_m, chirp_re[k], chirp_im[k]);
                            buf[k] = Complex::new(r * inv_n, -i * inv_n);
                        }
                    }
                }
            }
        }
    }

    /// Transforms every length-`n` frame of `data` in place, reusing one
    /// scratch allocation across all frames.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the plan length.
    pub fn process_many(&self, data: &mut [Complex], dir: Direction) {
        let mut scratch = vec![0.0; self.scratch_len()];
        self.process_many_with_scratch(data, &mut scratch, dir);
    }

    /// Allocation-free variant of [`Self::process_many`].
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the plan length or
    /// `scratch` is shorter than [`Self::scratch_len`].
    pub fn process_many_with_scratch(
        &self,
        data: &mut [Complex],
        scratch: &mut [f64],
        dir: Direction,
    ) {
        assert_eq!(
            data.len() % self.n,
            0,
            "data length {} is not a multiple of plan length {}",
            data.len(),
            self.n
        );
        for frame in data.chunks_exact_mut(self.n) {
            self.process_with_scratch(frame, scratch, dir);
        }
    }

    /// The twiddle table of a power-of-two plan.
    ///
    /// # Panics
    /// Panics if the plan is a Bluestein plan (internal misuse).
    fn pow2_base(&self) -> &[Complex] {
        match &self.kind {
            PlanKind::Pow2 { base, .. } => base,
            PlanKind::Bluestein { .. } => unreachable!("inner plan must be power-of-two"),
        }
    }

    /// The `k`-th base twiddle `e^{-j2πk/n}` (`k < n/2`), read from the
    /// precomputed table of a power-of-two plan.
    fn base_twiddle(&self, k: usize) -> Option<Complex> {
        match &self.kind {
            PlanKind::Pow2 { base, .. } if self.n >= 4 => {
                debug_assert!(k < self.n / 2);
                Some(base[k])
            }
            _ => None,
        }
    }
}

/// Complex multiply on planar components: `(tr + j·ti)·(wr + j·wi)`.
///
/// When the build target has hardware FMA, each component fuses into one
/// multiply plus one `mul_add` (single rounding — exact fused semantics,
/// identical on every FMA target). Without hardware FMA, `mul_add` would
/// lower to a libm call, so the plain two-multiply form is kept instead.
#[inline(always)]
fn cmul(tr: f64, ti: f64, wr: f64, wi: f64) -> (f64, f64) {
    if cfg!(target_feature = "fma") {
        (ti.mul_add(-wi, tr * wr), ti.mul_add(wr, tr * wi))
    } else {
        (tr * wr - ti * wi, tr * wi + ti * wr)
    }
}

/// Fused first Stockham stage, radix-2 (`s = 1`, log₂(n) odd): reads the
/// interleaved buffer directly and writes planar, folding the deinterleave
/// pass (and the inverse transform's pre-conjugation) into the butterfly.
fn fused_first_r2(
    buf: &[Complex],
    dre: &mut [f64],
    dim: &mut [f64],
    base: &[Complex],
    inverse: bool,
) {
    let m = buf.len() / 2;
    let (x0, x1) = buf.split_at(m);
    for (p, ((o, oi), (&a, &b))) in dre
        .chunks_exact_mut(2)
        .zip(dim.chunks_exact_mut(2))
        .zip(x0.iter().zip(x1.iter()))
        .enumerate()
    {
        let sign = if inverse { -1.0 } else { 1.0 };
        let (ar, ai) = (a.re, sign * a.im);
        let (br, bi) = (b.re, sign * b.im);
        let w = base[p];
        o[0] = ar + br;
        oi[0] = ai + bi;
        let (r, i) = cmul(ar - br, ai - bi, w.re, w.im);
        o[1] = r;
        oi[1] = i;
    }
}

/// Fused first Stockham stage, radix-4 (`s = 1`, log₂(n) even, n ≥ 16):
/// reads the interleaved buffer directly and writes planar. The packed
/// `w2f`/`w3f` tables keep every load unit-stride.
fn fused_first_r4(
    buf: &[Complex],
    dre: &mut [f64],
    dim: &mut [f64],
    base: &[Complex],
    w2f: &[Complex],
    w3f: &[Complex],
    inverse: bool,
) {
    let m = buf.len() / 4;
    let (x0, rest) = buf.split_at(m);
    let (x1, rest) = rest.split_at(m);
    let (x2, x3) = rest.split_at(m);
    let sign = if inverse { -1.0 } else { 1.0 };
    for (p, (o, oi)) in dre
        .chunks_exact_mut(4)
        .zip(dim.chunks_exact_mut(4))
        .enumerate()
    {
        let (a0r, a0i) = (x0[p].re, sign * x0[p].im);
        let (a1r, a1i) = (x1[p].re, sign * x1[p].im);
        let (a2r, a2i) = (x2[p].re, sign * x2[p].im);
        let (a3r, a3i) = (x3[p].re, sign * x3[p].im);
        let w1 = base[p];
        let w2 = w2f[p];
        let w3 = w3f[p];
        let b0r = a0r + a2r;
        let b0i = a0i + a2i;
        let b1r = a0r - a2r;
        let b1i = a0i - a2i;
        let b2r = a1r + a3r;
        let b2i = a1i + a3i;
        let dr = a1r - a3r;
        let di = a1i - a3i;
        o[0] = b0r + b2r;
        oi[0] = b0i + b2i;
        let (r, i) = cmul(b1r + di, b1i - dr, w1.re, w1.im);
        o[1] = r;
        oi[1] = i;
        let (r, i) = cmul(b0r - b2r, b0i - b2i, w2.re, w2.im);
        o[2] = r;
        oi[2] = i;
        let (r, i) = cmul(b1r - di, b1i + dr, w3.re, w3.im);
        o[3] = r;
        oi[3] = i;
    }
}

/// Fused last Stockham stage, radix-4 (`n_t = 4`, `s = n/4`): at this point
/// the single sub-transform covers the whole array, so every twiddle is 1
/// and the butterfly writes straight back to the interleaved buffer,
/// folding in the re-interleave (and, for the inverse, the final
/// conjugation and 1/N normalization).
fn fused_last_r4(sre: &[f64], sim: &[f64], buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    let s = n / 4;
    let (r0, rest) = sre.split_at(s);
    let (r1, rest) = rest.split_at(s);
    let (r2, r3) = rest.split_at(s);
    let (i0, rest) = sim.split_at(s);
    let (i1, rest) = rest.split_at(s);
    let (i2, i3) = rest.split_at(s);
    let (o0, rest) = buf.split_at_mut(s);
    let (o1, rest) = rest.split_at_mut(s);
    let (o2, o3) = rest.split_at_mut(s);
    let (scale, sign) = if inverse {
        (1.0 / n as f64, -1.0)
    } else {
        (1.0, 1.0)
    };
    let im_scale = sign * scale;
    for q in 0..s {
        let b0r = r0[q] + r2[q];
        let b0i = i0[q] + i2[q];
        let b1r = r0[q] - r2[q];
        let b1i = i0[q] - i2[q];
        let b2r = r1[q] + r3[q];
        let b2i = i1[q] + i3[q];
        let dr = r1[q] - r3[q];
        let di = i1[q] - i3[q];
        o0[q] = Complex::new((b0r + b2r) * scale, (b0i + b2i) * im_scale);
        o1[q] = Complex::new((b1r + di) * scale, (b1i - dr) * im_scale);
        o2[q] = Complex::new((b0r - b2r) * scale, (b0i - b2i) * im_scale);
        o3[q] = Complex::new((b1r - di) * scale, (b1i + dr) * im_scale);
    }
}

/// Forward Stockham autosort FFT over planar data, ping-ponging between the
/// `(re, im)` and `(wre, wim)` plane pairs (all length `n`, a power of two
/// ≥ 2). One radix-2 stage leads when log₂(n) is odd; everything else is
/// radix-4. Returns the stage count — the result sits in `(re, im)` when it
/// is even, in `(wre, wim)` when odd.
///
/// There is no bit-reversal pass: each stage streams sequentially from one
/// plane pair into the other, and every inner loop is an elementwise `f64`
/// loop over contiguous rows, which the compiler can vectorize.
fn planar_fft(
    re: &mut [f64],
    im: &mut [f64],
    wre: &mut [f64],
    wim: &mut [f64],
    base: &[Complex],
) -> usize {
    let n = re.len();
    let (mut sre, mut sim, mut dre, mut dim) = (re, im, wre, wim);
    let mut n_t = n; // remaining sub-transform length
    let mut s = 1; // number of interleaved sub-sequences (stage stride)
    let mut stages = 0;
    if n.trailing_zeros() % 2 == 1 {
        radix2_stage(sre, sim, dre, dim, base, n_t, s);
        std::mem::swap(&mut sre, &mut dre);
        std::mem::swap(&mut sim, &mut dim);
        n_t /= 2;
        s *= 2;
        stages += 1;
    }
    while n_t >= 4 {
        radix4_stage(sre, sim, dre, dim, base, n_t, s);
        std::mem::swap(&mut sre, &mut dre);
        std::mem::swap(&mut sim, &mut dim);
        n_t /= 4;
        s *= 4;
        stages += 1;
    }
    stages
}

/// One radix-2 Stockham stage: sub-transform length `n_t`, stride `s`.
///
/// Row `p` of the two input halves combines into the contiguous output rows
/// `2p` and `2p+1`; the twiddle is `base[p·s] = e^{-j2πp/n_t}`.
fn radix2_stage(
    sre: &[f64],
    sim: &[f64],
    dre: &mut [f64],
    dim: &mut [f64],
    base: &[Complex],
    n_t: usize,
    s: usize,
) {
    let m = n_t / 2;
    let (re0, re1) = sre.split_at(m * s);
    let (im0, im1) = sim.split_at(m * s);
    for (p, (ore, oim)) in dre
        .chunks_exact_mut(2 * s)
        .zip(dim.chunks_exact_mut(2 * s))
        .enumerate()
    {
        let w = base[p * s];
        let (o0r, o1r) = ore.split_at_mut(s);
        let (o0i, o1i) = oim.split_at_mut(s);
        let r0 = &re0[p * s..(p + 1) * s];
        let i0 = &im0[p * s..(p + 1) * s];
        let r1 = &re1[p * s..(p + 1) * s];
        let i1 = &im1[p * s..(p + 1) * s];
        for q in 0..s {
            let ar = r0[q];
            let ai = i0[q];
            let br = r1[q];
            let bi = i1[q];
            o0r[q] = ar + br;
            o0i[q] = ai + bi;
            let (r, i) = cmul(ar - br, ai - bi, w.re, w.im);
            o1r[q] = r;
            o1i[q] = i;
        }
    }
}

/// One radix-4 Stockham stage: sub-transform length `n_t`, stride `s`.
///
/// Row `p` of the four input quarters combines into the contiguous output
/// rows `4p..4p+4`. Twiddles are `w^p`, `w^{2p}`, `w^{3p}` with
/// `w = e^{-j2π/n_t}`; the third may exceed the half-period table and is
/// recovered exactly by negation (`e^{-j2π(k+n/2)/n} = -e^{-j2πk/n}`).
#[allow(clippy::too_many_arguments)]
fn radix4_stage(
    sre: &[f64],
    sim: &[f64],
    dre: &mut [f64],
    dim: &mut [f64],
    base: &[Complex],
    n_t: usize,
    s: usize,
) {
    // Dispatch the short-stride stages to monomorphized copies: with `s`
    // a compile-time constant the inner loop fully unrolls into straight
    // vector code instead of a low-trip-count loop with per-row overhead.
    match s {
        2 => return radix4_stage_impl(sre, sim, dre, dim, base, n_t, 2),
        4 => return radix4_stage_impl(sre, sim, dre, dim, base, n_t, 4),
        8 => return radix4_stage_impl(sre, sim, dre, dim, base, n_t, 8),
        16 => return radix4_stage_impl(sre, sim, dre, dim, base, n_t, 16),
        _ => {}
    }
    radix4_stage_impl(sre, sim, dre, dim, base, n_t, s)
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn radix4_stage_impl(
    sre: &[f64],
    sim: &[f64],
    dre: &mut [f64],
    dim: &mut [f64],
    base: &[Complex],
    n_t: usize,
    s: usize,
) {
    let half = base.len();
    let m = n_t / 4;
    let (re0, rest) = sre.split_at(m * s);
    let (re1, rest) = rest.split_at(m * s);
    let (re2, re3) = rest.split_at(m * s);
    let (im0, rest) = sim.split_at(m * s);
    let (im1, rest) = rest.split_at(m * s);
    let (im2, im3) = rest.split_at(m * s);
    for (p, (ore, oim)) in dre
        .chunks_exact_mut(4 * s)
        .zip(dim.chunks_exact_mut(4 * s))
        .enumerate()
    {
        let w1 = base[p * s];
        let w2 = base[2 * p * s];
        let i3 = 3 * p * s;
        let w3 = if i3 < half {
            base[i3]
        } else {
            -base[i3 - half]
        };
        let (o0r, rest) = ore.split_at_mut(s);
        let (o1r, rest) = rest.split_at_mut(s);
        let (o2r, o3r) = rest.split_at_mut(s);
        let (o0i, rest) = oim.split_at_mut(s);
        let (o1i, rest) = rest.split_at_mut(s);
        let (o2i, o3i) = rest.split_at_mut(s);
        let r0 = &re0[p * s..(p + 1) * s];
        let r1 = &re1[p * s..(p + 1) * s];
        let r2 = &re2[p * s..(p + 1) * s];
        let r3 = &re3[p * s..(p + 1) * s];
        let i0 = &im0[p * s..(p + 1) * s];
        let i1 = &im1[p * s..(p + 1) * s];
        let i2 = &im2[p * s..(p + 1) * s];
        let i3 = &im3[p * s..(p + 1) * s];
        for q in 0..s {
            let b0r = r0[q] + r2[q];
            let b0i = i0[q] + i2[q];
            let b1r = r0[q] - r2[q];
            let b1i = i0[q] - i2[q];
            let b2r = r1[q] + r3[q];
            let b2i = i1[q] + i3[q];
            let dr = r1[q] - r3[q];
            let di = i1[q] - i3[q];
            // b3 = −j·(a1 − a3) = (di, −dr)
            o0r[q] = b0r + b2r;
            o0i[q] = b0i + b2i;
            let (r, i) = cmul(b1r + di, b1i - dr, w1.re, w1.im);
            o1r[q] = r;
            o1i[q] = i;
            let (r, i) = cmul(b0r - b2r, b0i - b2i, w2.re, w2.im);
            o2r[q] = r;
            o2i[q] = i;
            let (r, i) = cmul(b1r - di, b1i + dr, w3.re, w3.im);
            o3r[q] = r;
            o3i[q] = i;
        }
    }
}

/// Process-wide cache of [`FftPlan`]s, keyed by transform length.
///
/// The FMCW pipeline transforms a handful of distinct lengths (range FFT,
/// Doppler FFT, Welch segments) thousands of times each, so the cache is a
/// small linear-scanned vector rather than a hash map. Each thread keeps its
/// own lock-free mirror of the plans it has used; the shared map behind a
/// [`parking_lot::Mutex`] is only consulted on a thread's first use of a
/// length.
pub struct FftPlanner;

static GLOBAL_PLANS: Mutex<Vec<(usize, Arc<FftPlan>)>> = Mutex::new(Vec::new());

thread_local! {
    static THREAD_PLANS: RefCell<Vec<(usize, Arc<FftPlan>)>> =
        const { RefCell::new(Vec::new()) };
    /// Scratch reused by the one-shot helpers ([`fft`], [`ifft`], [`rfft`]),
    /// so repeated one-shot calls allocate nothing but their output.
    static ONESHOT_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

impl FftPlanner {
    /// Returns the cached plan for length `n`, building it on first use.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn plan(n: usize) -> Arc<FftPlan> {
        assert!(n > 0, "FFT length must be positive");
        if let Some(plan) = THREAD_PLANS.with(|cache| {
            cache
                .borrow()
                .iter()
                .find(|(len, _)| *len == n)
                .map(|(_, plan)| Arc::clone(plan))
        }) {
            return plan;
        }
        let plan = Self::global_plan(n);
        THREAD_PLANS.with(|cache| cache.borrow_mut().push((n, Arc::clone(&plan))));
        plan
    }

    fn global_plan(n: usize) -> Arc<FftPlan> {
        if let Some(plan) = GLOBAL_PLANS
            .lock()
            .iter()
            .find(|(len, _)| *len == n)
            .map(|(_, plan)| Arc::clone(plan))
        {
            return plan;
        }
        // Build outside the lock: Bluestein construction recursively fetches
        // its power-of-two inner plan from this cache, and losing a race to
        // another thread merely wastes one construction.
        let built = Arc::new(FftPlan::new(n));
        let mut cache = GLOBAL_PLANS.lock();
        match cache.iter().find(|(len, _)| *len == n) {
            Some((_, existing)) => Arc::clone(existing),
            None => {
                cache.push((n, Arc::clone(&built)));
                built
            }
        }
    }

    /// Number of distinct lengths currently in the shared cache.
    pub fn cached_lengths() -> usize {
        GLOBAL_PLANS.lock().len()
    }
}

/// Runs `plan.process_with_scratch` against the thread-local one-shot
/// scratch, growing it on first use per length.
fn process_with_thread_scratch(plan: &FftPlan, buf: &mut [Complex], dir: Direction) {
    ONESHOT_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let need = plan.scratch_len();
        if scratch.len() < need {
            scratch.resize(need, 0.0);
        }
        plan.process_with_scratch(buf, &mut scratch, dir);
    });
}

/// One-shot forward FFT of a complex slice (any length).
///
/// Uses the [`FftPlanner`] cache and a thread-local scratch: the first call
/// for a given length builds the plan, subsequent calls only pay the
/// transform plus the output copy.
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    let plan = FftPlanner::plan(x.len());
    process_with_thread_scratch(&plan, &mut buf, Direction::Forward);
    buf
}

/// One-shot inverse FFT (normalized by `1/N`), plan-cached like [`fft`].
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    let plan = FftPlanner::plan(x.len());
    process_with_thread_scratch(&plan, &mut buf, Direction::Inverse);
    buf
}

/// Forward FFT of a real signal; returns the full complex spectrum.
///
/// Even lengths use the half-size trick: the 2h reals pack into h complex
/// samples, one h-point FFT runs, and conjugate symmetry untangles the even
/// and odd sub-spectra — roughly halving the work of the widen-to-complex
/// path, which remains the fallback for odd lengths.
pub fn rfft(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    if !n.is_multiple_of(2) || n < 4 {
        let buf: Vec<Complex> = x.iter().map(|&r| Complex::real(r)).collect();
        return fft(&buf);
    }
    let h = n / 2;
    let mut z: Vec<Complex> = (0..h)
        .map(|k| Complex::new(x[2 * k], x[2 * k + 1]))
        .collect();
    let plan = FftPlanner::plan(h);
    process_with_thread_scratch(&plan, &mut z, Direction::Forward);

    let mut out = vec![ZERO; n];
    // Untangle: with E/O the FFTs of the even/odd samples,
    //   X[k]     = E[k] + w^k·O[k]
    //   X[k + h] = E[k] − w^k·O[k],   w = e^{-j2π/n},
    // where E[k] = (Z[k] + Z*[h−k])/2 and O[k] = −j(Z[k] − Z*[h−k])/2.
    let step = Complex::cis(-PI / h as f64);
    let mut w = Complex::real(1.0);
    for k in 0..h {
        // Power-of-two plans expose their exact twiddle table (w^k for even
        // k is e^{-j2πk/n} = table[k/2]); odd k and Bluestein-h fall back to
        // one multiply from the previous value, bounding drift.
        if k > 0 {
            w = match plan.base_twiddle(k / 2) {
                Some(exact) if k % 2 == 0 => exact,
                _ => w * step,
            };
        }
        let zk = z[k];
        let zc = z[(h - k) % h].conj();
        let e = (zk + zc).scale(0.5);
        let o_t = (zk - zc).scale(0.5);
        // −j·o_t, then rotate by w^k.
        let o = Complex::new(o_t.im, -o_t.re) * w;
        out[k] = e + o;
        out[k + h] = e - o;
    }
    out
}

/// The frequency in Hz associated with each FFT bin, given the sample rate.
///
/// Bins `0..N/2` map to non-negative frequencies; bins above `N/2` map to
/// negative frequencies, matching the layout of [`fft`] output.
pub fn fft_frequencies(n: usize, sample_rate: f64) -> Vec<f64> {
    let df = sample_rate / n as f64;
    (0..n)
        .map(|k| {
            if k <= n / 2 {
                k as f64 * df
            } else {
                (k as f64 - n as f64) * df
            }
        })
        .collect()
}

/// Reorders a spectrum so the zero-frequency bin sits in the middle.
pub fn fftshift<T: Copy>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// Zero-pads `x` to length `n` (returns a copy; `n >= x.len()`).
///
/// # Panics
/// Panics if `n < x.len()`.
pub fn zero_pad(x: &[Complex], n: usize) -> Vec<Complex> {
    assert!(n >= x.len(), "zero_pad target shorter than input");
    let mut out = x.to_vec();
    out.resize(n, ZERO);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::from_real;

    /// Naive O(N²) DFT used as the reference implementation.
    fn dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| x[t] * Complex::cis(-2.0 * PI * (k * t) as f64 / n as f64))
                    .sum()
            })
            .collect()
    }

    fn assert_spectra_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (*x - *y).norm() < tol,
                "spectra differ: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        for n in [2usize, 4, 8, 16, 32, 64, 128] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            assert_spectra_close(&fft(&x), &dft(&x), 1e-9 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary_lengths() {
        for n in [1usize, 2, 3, 5, 6, 7, 12, 15, 17, 100, 243] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).cos(), (i as f64 * 1.3).sin()))
                .collect();
            assert_spectra_close(&fft(&x), &dft(&x), 1e-8 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn inverse_recovers_signal() {
        for n in [8usize, 11, 64, 100] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
                .collect();
            let y = ifft(&fft(&x));
            assert_spectra_close(&y, &x, 1e-8 * n as f64);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![ZERO; 16];
        x[0] = Complex::real(1.0);
        let y = fft(&x);
        for z in y {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let x = vec![Complex::real(2.0); 32];
        let y = fft(&x);
        assert!((y[0].re - 64.0).abs() < 1e-9);
        for z in &y[1..] {
            assert!(z.norm() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_lands_in_expected_bin() {
        let n = 128;
        let k0 = 9;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * PI * (k0 * t) as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, z) in y.iter().enumerate() {
            if k == k0 {
                assert!((z.norm() - n as f64).abs() < 1e-8);
            } else {
                assert!(z.norm() < 1e-8, "leakage in bin {k}");
            }
        }
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.9).sin() + 0.3).collect();
        let y = rfft(&x);
        let n = y.len();
        for k in 1..n {
            let a = y[k];
            let b = y[n - k].conj();
            assert!((a - b).norm() < 1e-9);
        }
    }

    #[test]
    fn rfft_matches_widened_fft() {
        // Even lengths exercise the half-size path (both power-of-two and
        // Bluestein halves), odd lengths the widening fallback.
        for n in [2usize, 6, 15, 48, 64, 90, 128] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin() - 0.2).collect();
            let widened: Vec<Complex> = x.iter().map(|&r| Complex::real(r)).collect();
            assert_spectra_close(&rfft(&x), &fft(&widened), 1e-9 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> = (0..50)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let y = fft(&x);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((e_time - e_freq).abs() < 1e-8 * e_time);
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = FftPlan::new(33);
        let x: Vec<Complex> = (0..33).map(|i| Complex::real(i as f64)).collect();
        let mut a = x.clone();
        plan.process(&mut a, Direction::Forward);
        let mut b = x.clone();
        plan.process(&mut b, Direction::Forward);
        assert_spectra_close(&a, &b, 0.0_f64.max(1e-12));
        assert_eq!(plan.len(), 33);
        assert!(!plan.is_empty());
    }

    #[test]
    fn planner_returns_shared_plans() {
        let a = FftPlanner::plan(4096);
        let b = FftPlanner::plan(4096);
        assert!(Arc::ptr_eq(&a, &b), "same length must share one plan");
        assert_eq!(a.len(), 4096);
        assert!(FftPlanner::cached_lengths() >= 1);
    }

    #[test]
    fn planner_plan_matches_fresh_plan_bitwise() {
        for n in [64usize, 900] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.41).sin(), (i as f64 * 0.23).cos()))
                .collect();
            let mut cached = x.clone();
            FftPlanner::plan(n).process(&mut cached, Direction::Forward);
            let mut fresh = x.clone();
            FftPlan::new(n).process(&mut fresh, Direction::Forward);
            for (a, b) in cached.iter().zip(&fresh) {
                assert_eq!(a.re, b.re);
                assert_eq!(a.im, b.im);
            }
        }
    }

    #[test]
    fn scratch_process_matches_allocating_process() {
        for n in [32usize, 48, 900] {
            let plan = FftPlan::new(n);
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.7).cos(), (i as f64 * 0.3).sin()))
                .collect();
            let mut scratch = vec![0.0; plan.scratch_len()];
            let mut a = x.clone();
            plan.process_with_scratch(&mut a, &mut scratch, Direction::Forward);
            // Dirty the scratch to prove its entry contents are irrelevant.
            scratch.fill(7.5);
            let mut b = x.clone();
            plan.process_with_scratch(&mut b, &mut scratch, Direction::Forward);
            let mut c = x.clone();
            plan.process(&mut c, Direction::Forward);
            for ((p, q), r) in a.iter().zip(&b).zip(&c) {
                assert_eq!(p.re, q.re);
                assert_eq!(p.im, q.im);
                assert_eq!(p.re, r.re);
                assert_eq!(p.im, r.im);
            }
        }
    }

    #[test]
    fn process_many_matches_per_frame() {
        for n in [16usize, 30] {
            let plan = FftPlan::new(n);
            let frames = 5;
            let data: Vec<Complex> = (0..n * frames)
                .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
                .collect();
            let mut batched = data.clone();
            plan.process_many(&mut batched, Direction::Forward);
            for (f, frame) in data.chunks_exact(n).enumerate() {
                let mut one = frame.to_vec();
                plan.process(&mut one, Direction::Forward);
                for (a, b) in batched[f * n..(f + 1) * n].iter().zip(&one) {
                    assert_eq!(a.re, b.re);
                    assert_eq!(a.im, b.im);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "scratch too short")]
    fn scratch_too_short_is_rejected() {
        let plan = FftPlan::new(30);
        let mut buf = vec![ZERO; 30];
        let mut scratch = vec![0.0; plan.scratch_len() - 1];
        plan.process_with_scratch(&mut buf, &mut scratch, Direction::Forward);
    }

    #[test]
    fn fft_frequencies_layout() {
        let f = fft_frequencies(8, 8000.0);
        assert_eq!(
            f,
            vec![0.0, 1000.0, 2000.0, 3000.0, 4000.0, -3000.0, -2000.0, -1000.0]
        );
    }

    #[test]
    fn fftshift_centers_dc() {
        let x = [0, 1, 2, 3, 4, 5, 6, 7];
        assert_eq!(fftshift(&x), vec![4, 5, 6, 7, 0, 1, 2, 3]);
        let odd = [0, 1, 2, 3, 4];
        assert_eq!(fftshift(&odd), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn zero_pad_extends() {
        let x = from_real(&[1.0, 2.0]);
        let y = zero_pad(&x, 4);
        assert_eq!(y.len(), 4);
        assert_eq!(y[2], ZERO);
    }

    #[test]
    #[should_panic(expected = "buffer length does not match plan")]
    fn plan_rejects_wrong_length() {
        let plan = FftPlan::new(8);
        let mut buf = vec![ZERO; 7];
        plan.process(&mut buf, Direction::Forward);
    }

    #[test]
    fn length_one_transform_is_identity() {
        let x = vec![Complex::new(3.0, -2.0)];
        assert_eq!(fft(&x)[0], x[0]);
        assert_eq!(ifft(&x)[0], x[0]);
    }
}
