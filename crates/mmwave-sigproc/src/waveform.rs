//! Waveform synthesis: FMCW chirps (sawtooth and triangular), single/two
//! tones, and on-off keying envelopes.
//!
//! MilBack's AP uses three waveform families (§8):
//! * sawtooth FMCW chirps (18 µs, 3 GHz sweep) for localization — Field 2,
//! * triangular FMCW chirps (45 µs) for node-side orientation — Field 1,
//! * two-tone queries for OAQFM uplink/downlink payloads.
//!
//! Chirps are described analytically (instantaneous frequency and phase as
//! closed forms) so the channel model can evaluate them at arbitrary times
//! without synthesizing gigasample buffers, and can also be sampled into
//! buffers for the DSP paths that need them.

use crate::complex::Complex;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Shape of an FMCW frequency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChirpShape {
    /// Frequency ramps linearly from start to start+bandwidth, then resets.
    Sawtooth,
    /// Frequency ramps up for the first half and back down for the second
    /// half (the V shape the node's orientation estimator relies on).
    Triangular,
}

/// An analytically-described linear FMCW chirp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Chirp {
    /// Sweep start frequency, Hz.
    pub start_hz: f64,
    /// Swept bandwidth, Hz (always positive; sweep direction set by shape).
    pub bandwidth_hz: f64,
    /// Chirp duration, seconds.
    pub duration_s: f64,
    /// Sweep shape.
    pub shape: ChirpShape,
}

impl Chirp {
    /// Creates a sawtooth chirp.
    ///
    /// # Panics
    /// Panics unless bandwidth and duration are positive.
    pub fn sawtooth(start_hz: f64, bandwidth_hz: f64, duration_s: f64) -> Self {
        assert!(bandwidth_hz > 0.0 && duration_s > 0.0);
        Self {
            start_hz,
            bandwidth_hz,
            duration_s,
            shape: ChirpShape::Sawtooth,
        }
    }

    /// Creates a triangular chirp (up then down within `duration_s`).
    pub fn triangular(start_hz: f64, bandwidth_hz: f64, duration_s: f64) -> Self {
        assert!(bandwidth_hz > 0.0 && duration_s > 0.0);
        Self {
            start_hz,
            bandwidth_hz,
            duration_s,
            shape: ChirpShape::Triangular,
        }
    }

    /// Sweep slope in Hz/s. For triangular chirps this is the magnitude of
    /// the up-segment slope (the down segment has the negative of it).
    pub fn slope(&self) -> f64 {
        match self.shape {
            ChirpShape::Sawtooth => self.bandwidth_hz / self.duration_s,
            ChirpShape::Triangular => 2.0 * self.bandwidth_hz / self.duration_s,
        }
    }

    /// End frequency of the sweep, Hz.
    pub fn end_hz(&self) -> f64 {
        self.start_hz + self.bandwidth_hz
    }

    /// Center frequency of the sweep, Hz.
    pub fn center_hz(&self) -> f64 {
        self.start_hz + self.bandwidth_hz / 2.0
    }

    /// Instantaneous frequency at time `t` seconds into the chirp.
    ///
    /// Times are folded into `[0, duration)` so chirp trains can be
    /// evaluated with a running clock.
    pub fn instantaneous_freq(&self, t: f64) -> f64 {
        let t = t.rem_euclid(self.duration_s);
        match self.shape {
            ChirpShape::Sawtooth => self.start_hz + self.slope() * t,
            ChirpShape::Triangular => {
                let half = self.duration_s / 2.0;
                if t < half {
                    self.start_hz + self.slope() * t
                } else {
                    self.end_hz() - self.slope() * (t - half)
                }
            }
        }
    }

    /// Accumulated phase (radians) at time `t` into the chirp: the integral
    /// of `2π·f(τ)` from 0 to `t`. Only valid within one period.
    pub fn phase(&self, t: f64) -> f64 {
        let t = t.rem_euclid(self.duration_s);
        match self.shape {
            ChirpShape::Sawtooth => 2.0 * PI * (self.start_hz * t + 0.5 * self.slope() * t * t),
            ChirpShape::Triangular => {
                let half = self.duration_s / 2.0;
                if t < half {
                    2.0 * PI * (self.start_hz * t + 0.5 * self.slope() * t * t)
                } else {
                    let up = 2.0 * PI * (self.start_hz * half + 0.5 * self.slope() * half * half);
                    let td = t - half;
                    up + 2.0 * PI * (self.end_hz() * td - 0.5 * self.slope() * td * td)
                }
            }
        }
    }

    /// For a triangular chirp, the two times within the period at which the
    /// instantaneous frequency crosses `freq_hz` (up-sweep and down-sweep).
    ///
    /// Returns `None` for sawtooth chirps or when `freq_hz` is outside the
    /// swept band. This is the geometric heart of node-side orientation
    /// sensing (§5.2b): the node measures the separation of the two received
    /// power peaks, which equals the separation of these two crossings.
    pub fn triangular_crossings(&self, freq_hz: f64) -> Option<(f64, f64)> {
        if self.shape != ChirpShape::Triangular {
            return None;
        }
        if freq_hz < self.start_hz || freq_hz > self.end_hz() {
            return None;
        }
        let s = self.slope();
        let t_up = (freq_hz - self.start_hz) / s;
        let half = self.duration_s / 2.0;
        let t_down = half + (self.end_hz() - freq_hz) / s;
        Some((t_up, t_down))
    }

    /// Inverts a peak-separation measurement back to the frequency that a
    /// triangular chirp was crossing (the inverse of
    /// [`triangular_crossings`](Self::triangular_crossings)).
    ///
    /// Returns `None` for non-triangular chirps or separations longer than
    /// the chirp duration.
    pub fn freq_from_peak_separation(&self, delta_t: f64) -> Option<f64> {
        if self.shape != ChirpShape::Triangular || !(0.0..=self.duration_s).contains(&delta_t) {
            return None;
        }
        // Δt = (T/2 - t_up) + (t_down - T/2) = 2·(f_end - f)/slope
        Some(self.end_hz() - self.slope() * delta_t / 2.0)
    }

    /// Samples the chirp as a complex baseband signal relative to its start
    /// frequency, at `sample_rate` Hz. Suitable when the observation
    /// bandwidth fits the sample rate (tests, small sweeps).
    pub fn sample_baseband(&self, sample_rate: f64) -> Vec<Complex> {
        let n = (self.duration_s * sample_rate).round() as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 / sample_rate;
                Complex::cis(self.phase(t) - 2.0 * PI * self.start_hz * t)
            })
            .collect()
    }
}

/// A continuous-wave tone with amplitude and frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tone {
    /// Carrier frequency, Hz.
    pub freq_hz: f64,
    /// Peak amplitude (volts across the system impedance, by convention).
    pub amplitude: f64,
}

impl Tone {
    /// Creates a tone.
    pub fn new(freq_hz: f64, amplitude: f64) -> Self {
        Self { freq_hz, amplitude }
    }

    /// Samples `cos(2πft)` at `n` points spaced `dt` seconds apart.
    pub fn sample_real(&self, n: usize, dt: f64) -> Vec<f64> {
        (0..n)
            .map(|i| self.amplitude * (2.0 * PI * self.freq_hz * i as f64 * dt).cos())
            .collect()
    }

    /// Average power of the tone across `ohms` (A²/2R).
    pub fn power_watts(&self, ohms: f64) -> f64 {
        self.amplitude * self.amplitude / (2.0 * ohms)
    }
}

/// One OAQFM symbol: presence/absence of each of the two tones.
///
/// Encodes two bits per symbol exactly as Figure 6 of the paper:
/// `00` → both tones off, `01` → only f_B, `10` → only f_A, `11` → both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OaqfmSymbol {
    /// Whether the f_A tone (port-A beam) is present.
    pub tone_a: bool,
    /// Whether the f_B tone (port-B beam) is present.
    pub tone_b: bool,
}

impl OaqfmSymbol {
    /// All four symbols in bit order 00, 01, 10, 11.
    pub const ALL: [OaqfmSymbol; 4] = [
        OaqfmSymbol {
            tone_a: false,
            tone_b: false,
        },
        OaqfmSymbol {
            tone_a: false,
            tone_b: true,
        },
        OaqfmSymbol {
            tone_a: true,
            tone_b: false,
        },
        OaqfmSymbol {
            tone_a: true,
            tone_b: true,
        },
    ];

    /// Maps a 2-bit value (`0..=3`) to a symbol. The MSB keys tone A.
    ///
    /// # Panics
    /// Panics if `bits > 3`.
    pub fn from_bits(bits: u8) -> Self {
        assert!(bits <= 3, "OAQFM symbols carry exactly two bits");
        Self {
            tone_a: bits & 0b10 != 0,
            tone_b: bits & 0b01 != 0,
        }
    }

    /// Recovers the 2-bit value carried by this symbol.
    pub fn to_bits(self) -> u8 {
        (u8::from(self.tone_a) << 1) | u8::from(self.tone_b)
    }

    /// Number of tones present (0, 1 or 2) — proportional to TX energy.
    pub fn tone_count(self) -> u8 {
        u8::from(self.tone_a) + u8::from(self.tone_b)
    }
}

/// Packs a byte slice into a sequence of OAQFM symbols, MSB-first.
pub fn bytes_to_symbols(data: &[u8]) -> Vec<OaqfmSymbol> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for &byte in data {
        for shift in [6u8, 4, 2, 0] {
            out.push(OaqfmSymbol::from_bits((byte >> shift) & 0b11));
        }
    }
    out
}

/// Reassembles bytes from OAQFM symbols (inverse of [`bytes_to_symbols`]).
///
/// # Panics
/// Panics if the symbol count is not a multiple of four.
pub fn symbols_to_bytes(symbols: &[OaqfmSymbol]) -> Vec<u8> {
    assert!(symbols.len().is_multiple_of(4), "need 4 symbols per byte");
    symbols
        .chunks_exact(4)
        .map(|c| c.iter().fold(0u8, |acc, s| (acc << 2) | s.to_bits()))
        .collect()
}

/// Generates a rectangular on-off keying envelope: `symbols[i]` holds the
/// level for the i-th symbol period of `samples_per_symbol` samples.
pub fn ook_envelope(levels: &[f64], samples_per_symbol: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(levels.len() * samples_per_symbol);
    for &l in levels {
        out.extend(std::iter::repeat_n(l, samples_per_symbol));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sawtooth_sweep_endpoints() {
        let c = Chirp::sawtooth(26.5e9, 3e9, 18e-6);
        assert_eq!(c.instantaneous_freq(0.0), 26.5e9);
        let just_before_end = c.instantaneous_freq(18e-6 - 1e-12);
        assert!((just_before_end - 29.5e9).abs() < 1e6);
        assert!((c.center_hz() - 28e9).abs() < 1.0);
    }

    #[test]
    fn sawtooth_slope_matches_paper_field2() {
        // 3 GHz over 18 µs = 1.667e14 Hz/s.
        let c = Chirp::sawtooth(26.5e9, 3e9, 18e-6);
        assert!((c.slope() - 3e9 / 18e-6).abs() < 1.0);
    }

    #[test]
    fn triangular_is_symmetric_around_midpoint() {
        let c = Chirp::triangular(26.5e9, 3e9, 45e-6);
        let t1 = 10e-6;
        let f_up = c.instantaneous_freq(t1);
        let f_down = c.instantaneous_freq(45e-6 - t1);
        assert!((f_up - f_down).abs() < 1.0);
        // Peak frequency at midpoint.
        assert!((c.instantaneous_freq(22.5e-6) - 29.5e9).abs() < 1e3);
    }

    #[test]
    fn chirp_period_folding() {
        let c = Chirp::sawtooth(1e9, 1e9, 10e-6);
        assert!((c.instantaneous_freq(25e-6) - c.instantaneous_freq(5e-6)).abs() < 1e-3);
    }

    #[test]
    fn phase_derivative_approximates_frequency() {
        let c = Chirp::sawtooth(1e6, 2e6, 1e-3);
        let dt = 1e-9;
        for &t in &[1e-4, 3e-4, 7e-4] {
            let f_est = (c.phase(t + dt) - c.phase(t)) / (2.0 * PI * dt);
            let f_true = c.instantaneous_freq(t + dt / 2.0);
            assert!((f_est - f_true).abs() / f_true < 1e-6);
        }
    }

    #[test]
    fn triangular_phase_is_continuous_at_apex() {
        // Crossing the apex must not jump the phase: the increment over 2ε
        // equals 2π·f_apex·2ε to first order.
        let c = Chirp::triangular(1e6, 2e6, 1e-3);
        let eps = 1e-9;
        let before = c.phase(0.5e-3 - eps);
        let after = c.phase(0.5e-3 + eps);
        let expected = 2.0 * PI * c.end_hz() * 2.0 * eps;
        assert!(((after - before) - expected).abs() < 1e-6);
    }

    #[test]
    fn triangular_crossings_are_symmetric_for_center_freq() {
        let c = Chirp::triangular(26.5e9, 3e9, 45e-6);
        let (up, down) = c.triangular_crossings(28e9).unwrap();
        // Center frequency crossings sit symmetric around the apex.
        assert!((up - 11.25e-6).abs() < 1e-12);
        assert!((down - 33.75e-6).abs() < 1e-12);
    }

    #[test]
    fn crossing_separation_inverts_exactly() {
        let c = Chirp::triangular(26.5e9, 3e9, 45e-6);
        for f in [26.6e9, 27.5e9, 28.9e9, 29.4e9] {
            let (up, down) = c.triangular_crossings(f).unwrap();
            let rec = c.freq_from_peak_separation(down - up).unwrap();
            assert!((rec - f).abs() < 1.0, "{f} → {rec}");
        }
    }

    #[test]
    fn crossings_refuse_out_of_band_and_sawtooth() {
        let tri = Chirp::triangular(26.5e9, 3e9, 45e-6);
        assert!(tri.triangular_crossings(26.4e9).is_none());
        assert!(tri.triangular_crossings(29.6e9).is_none());
        let saw = Chirp::sawtooth(26.5e9, 3e9, 18e-6);
        assert!(saw.triangular_crossings(27e9).is_none());
        assert!(saw.freq_from_peak_separation(1e-6).is_none());
    }

    #[test]
    fn higher_frequency_means_smaller_peak_separation() {
        // The V-shape: beams near the sweep apex see their two power peaks
        // close together; beams near the sweep edges see them far apart.
        let c = Chirp::triangular(26.5e9, 3e9, 45e-6);
        let (u1, d1) = c.triangular_crossings(27e9).unwrap();
        let (u2, d2) = c.triangular_crossings(29e9).unwrap();
        assert!((d2 - u2) < (d1 - u1));
    }

    #[test]
    fn sampled_baseband_has_unit_magnitude_and_correct_length() {
        let c = Chirp::sawtooth(0.0, 1e6, 1e-4);
        let s = c.sample_baseband(10e6);
        assert_eq!(s.len(), 1000);
        for z in &s {
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tone_power_reference() {
        // 1 V peak across 50 Ω is 10 mW = +10 dBm.
        let t = Tone::new(28e9, 1.0);
        assert!((t.power_watts(50.0) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn tone_sampling() {
        let t = Tone::new(1e3, 2.0);
        let s = t.sample_real(4, 0.25e-3);
        assert!((s[0] - 2.0).abs() < 1e-12);
        assert!(s[1].abs() < 1e-9);
        assert!((s[2] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn oaqfm_symbol_bits_roundtrip() {
        for bits in 0..4u8 {
            assert_eq!(OaqfmSymbol::from_bits(bits).to_bits(), bits);
        }
        assert_eq!(OaqfmSymbol::ALL[2], OaqfmSymbol::from_bits(0b10));
    }

    #[test]
    fn oaqfm_symbol_semantics_match_figure_6() {
        let s01 = OaqfmSymbol::from_bits(0b01);
        assert!(!s01.tone_a && s01.tone_b);
        let s10 = OaqfmSymbol::from_bits(0b10);
        assert!(s10.tone_a && !s10.tone_b);
        assert_eq!(OaqfmSymbol::from_bits(0b00).tone_count(), 0);
        assert_eq!(OaqfmSymbol::from_bits(0b11).tone_count(), 2);
    }

    #[test]
    #[should_panic(expected = "exactly two bits")]
    fn oaqfm_rejects_wide_values() {
        OaqfmSymbol::from_bits(4);
    }

    #[test]
    fn byte_symbol_roundtrip() {
        let data = vec![0x00, 0xFF, 0xA5, 0x3C, 0x42];
        let syms = bytes_to_symbols(&data);
        assert_eq!(syms.len(), 20);
        assert_eq!(symbols_to_bytes(&syms), data);
    }

    #[test]
    fn byte_packing_is_msb_first() {
        let syms = bytes_to_symbols(&[0b10_01_11_00]);
        assert_eq!(syms[0].to_bits(), 0b10);
        assert_eq!(syms[1].to_bits(), 0b01);
        assert_eq!(syms[2].to_bits(), 0b11);
        assert_eq!(syms[3].to_bits(), 0b00);
    }

    #[test]
    fn ook_envelope_shape() {
        let env = ook_envelope(&[1.0, 0.0, 1.0], 3);
        assert_eq!(env, vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }
}
