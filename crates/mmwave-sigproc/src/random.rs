//! Seeded random-signal generation: Gaussian noise (real and complex AWGN)
//! and random bit streams for Monte-Carlo BER runs.
//!
//! Everything takes an explicit seed or RNG so experiments are exactly
//! reproducible run-to-run — a hard requirement for the regression tests
//! that pin figure shapes.

use crate::complex::Complex;

/// Randomness backend behind the optional `rand` Cargo feature: with the
/// feature on, bits come from the external `rand` crate's `StdRng`; by
/// default they come from the in-tree xoshiro256++ generator below. The
/// in-tree generator implements the exact algorithm (SplitMix64 seeding,
/// xoshiro256++ output, 53-bit `[0, 1)` floats) the workspace's `rand`
/// stand-in uses, so every pinned seed yields the same stream either way
/// when building against the shim.
#[cfg(feature = "rand")]
mod backend {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[derive(Debug, Clone)]
    pub(super) struct Backend(StdRng);

    impl Backend {
        pub(super) fn from_seed(seed: u64) -> Self {
            Self(StdRng::seed_from_u64(seed))
        }

        /// Uniform in `[0, 1)`.
        pub(super) fn uniform_unit(&mut self) -> f64 {
            self.0.gen::<f64>()
        }

        pub(super) fn bit(&mut self) -> bool {
            self.0.gen::<bool>()
        }

        pub(super) fn byte(&mut self) -> u8 {
            self.0.gen::<u8>()
        }
    }
}

#[cfg(not(feature = "rand"))]
mod backend {
    /// xoshiro256++ seeded via SplitMix64 (the xoshiro reference recipe).
    #[derive(Debug, Clone)]
    pub(super) struct Backend {
        s: [u64; 4],
    }

    impl Backend {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub(super) fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            Self { s }
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`: 53 mantissa bits.
        pub(super) fn uniform_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub(super) fn bit(&mut self) -> bool {
            self.next_u64() >> 63 == 1
        }

        pub(super) fn byte(&mut self) -> u8 {
            (self.next_u64() >> 56) as u8
        }
    }
}

use backend::Backend;

/// A seeded source of Gaussian samples (Marsaglia polar method).
#[derive(Debug, Clone)]
pub struct GaussianSource {
    rng: Backend,
    cached: Option<f64>,
}

impl GaussianSource {
    /// Creates a source from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Backend::from_seed(seed),
            cached: None,
        }
    }

    /// Draws one standard-normal sample.
    pub fn standard(&mut self) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        loop {
            let u = -1.0 + self.rng.uniform_unit() * 2.0;
            let v = -1.0 + self.rng.uniform_unit() * 2.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                self.cached = Some(v * k);
                return u * k;
            }
        }
    }

    /// Draws one `N(0, σ²)` sample.
    pub fn sample(&mut self, sigma: f64) -> f64 {
        self.standard() * sigma
    }

    /// Fills a vector with real AWGN of the given *power* (variance) in
    /// linear units.
    pub fn real_noise(&mut self, n: usize, power: f64) -> Vec<f64> {
        let sigma = power.sqrt();
        (0..n).map(|_| self.sample(sigma)).collect()
    }

    /// Fills a vector with circularly-symmetric complex AWGN whose *total*
    /// power (E|z|²) is `power` — i.e. each quadrature carries `power/2`.
    pub fn complex_noise(&mut self, n: usize, power: f64) -> Vec<Complex> {
        let sigma = (power / 2.0).sqrt();
        (0..n)
            .map(|_| Complex::new(self.sample(sigma), self.sample(sigma)))
            .collect()
    }

    /// Adds real AWGN of variance `power` to a signal in place.
    pub fn add_real_noise(&mut self, x: &mut [f64], power: f64) {
        let sigma = power.sqrt();
        for v in x.iter_mut() {
            *v += self.sample(sigma);
        }
    }

    /// Adds complex AWGN of total power `power` to a signal in place.
    pub fn add_complex_noise(&mut self, x: &mut [Complex], power: f64) {
        let sigma = (power / 2.0).sqrt();
        for z in x.iter_mut() {
            *z += Complex::new(self.sample(sigma), self.sample(sigma));
        }
    }

    /// Draws `n` uniformly random bits.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.rng.bit()).collect()
    }

    /// Draws `n` random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.rng.byte()).collect()
    }

    /// Draws a uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + self.rng.uniform_unit() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, variance};

    #[test]
    fn same_seed_same_stream() {
        let mut a = GaussianSource::new(7);
        let mut b = GaussianSource::new(7);
        for _ in 0..100 {
            assert_eq!(a.standard(), b.standard());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianSource::new(1);
        let mut b = GaussianSource::new(2);
        let va: Vec<f64> = (0..16).map(|_| a.standard()).collect();
        let vb: Vec<f64> = (0..16).map(|_| b.standard()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn standard_normal_moments() {
        let mut g = GaussianSource::new(42);
        let x: Vec<f64> = (0..200_000).map(|_| g.standard()).collect();
        assert!(mean(&x).abs() < 0.01);
        assert!((variance(&x) - 1.0).abs() < 0.02);
    }

    #[test]
    fn real_noise_power_matches_request() {
        let mut g = GaussianSource::new(5);
        let p = 0.25;
        let x = g.real_noise(100_000, p);
        let measured = x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        assert!((measured - p).abs() / p < 0.03);
    }

    #[test]
    fn complex_noise_power_split_across_quadratures() {
        let mut g = GaussianSource::new(9);
        let p = 2.0;
        let z = g.complex_noise(100_000, p);
        let total = z.iter().map(|v| v.norm_sqr()).sum::<f64>() / z.len() as f64;
        assert!((total - p).abs() / p < 0.03);
        let re_p = z.iter().map(|v| v.re * v.re).sum::<f64>() / z.len() as f64;
        assert!((re_p - p / 2.0).abs() / p < 0.03);
    }

    #[test]
    fn add_noise_preserves_mean_signal() {
        let mut g = GaussianSource::new(3);
        let mut x = vec![5.0; 50_000];
        g.add_real_noise(&mut x, 0.1);
        assert!((mean(&x) - 5.0).abs() < 0.01);
    }

    #[test]
    fn bits_are_roughly_balanced() {
        let mut g = GaussianSource::new(11);
        let bits = g.bits(100_000);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((ones as f64 / 1e5 - 0.5).abs() < 0.01);
    }

    #[test]
    fn uniform_bounds() {
        let mut g = GaussianSource::new(13);
        for _ in 0..1000 {
            let v = g.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
