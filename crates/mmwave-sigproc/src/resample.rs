//! Sample-rate conversion: anti-aliased decimation, linear interpolation,
//! and fractional-delay resampling.
//!
//! The stack crosses sample-rate domains constantly — 200 MS/s trace
//! synthesis → 50 MS/s digitizer → 1 MS/s node ADC — and naive decimation
//! aliases out-of-band noise into the band of interest. These helpers make
//! the conversions explicit and tested.

use crate::filter::FirFilter;
use crate::window::Window;

/// Decimates by an integer factor with a windowed-sinc anti-alias filter.
///
/// The filter cuts at 80% of the post-decimation Nyquist, 8·factor+1 taps.
///
/// # Panics
/// Panics for a zero factor.
pub fn decimate(x: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "decimation factor must be positive");
    if factor == 1 {
        return x.to_vec();
    }
    let taps = 8 * factor + 1;
    let fir = FirFilter::low_pass(0.8 / (2.0 * factor as f64), 1.0, taps, Window::Hamming);
    let filtered = fir.filter(x);
    // Compensate the FIR group delay so features stay time-aligned.
    let delay = fir.group_delay() as usize;
    filtered
        .iter()
        .skip(delay)
        .step_by(factor)
        .copied()
        .collect()
}

/// Linearly interpolates `x` (sampled at `rate_in`) onto a new rate.
///
/// # Panics
/// Panics unless both rates are positive and `x` is non-empty.
pub fn resample_linear(x: &[f64], rate_in: f64, rate_out: f64) -> Vec<f64> {
    assert!(rate_in > 0.0 && rate_out > 0.0, "rates must be positive");
    assert!(!x.is_empty(), "cannot resample an empty signal");
    let n_out = ((x.len() as f64) * rate_out / rate_in).floor() as usize;
    (0..n_out)
        .map(|i| {
            let t = i as f64 * rate_in / rate_out;
            let k = t.floor() as usize;
            if k + 1 >= x.len() {
                x[x.len() - 1]
            } else {
                let frac = t - k as f64;
                x[k] * (1.0 - frac) + x[k + 1] * frac
            }
        })
        .collect()
}

/// Applies a fractional delay of `delay` samples via linear interpolation
/// (the node's asynchronous sampling phase relative to the AP's chirps).
pub fn fractional_delay(x: &[f64], delay: f64) -> Vec<f64> {
    assert!(delay >= 0.0, "delay must be non-negative");
    let n = x.len();
    (0..n)
        .map(|i| {
            let t = i as f64 - delay;
            if t < 0.0 {
                0.0
            } else {
                let k = t.floor() as usize;
                let frac = t - k as f64;
                if k + 1 >= n {
                    x[n - 1]
                } else {
                    x[k] * (1.0 - frac) + x[k + 1] * frac
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn decimate_by_one_is_identity() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(decimate(&x, 1), x);
    }

    #[test]
    fn decimation_preserves_in_band_tone() {
        let fs = 1e6;
        let x = tone(10e3, fs, 8000);
        let y = decimate(&x, 10);
        // The decimated tone at 10 kHz / 100 kS/s keeps its amplitude.
        let rms_in = crate::stats::rms(&x);
        let rms_out = crate::stats::rms(&y[100..700]);
        assert!(
            (rms_out - rms_in).abs() / rms_in < 0.05,
            "{rms_out} vs {rms_in}"
        );
    }

    #[test]
    fn decimation_rejects_aliasing_tone() {
        // 90 kHz tone decimated ×10 to 100 kS/s would alias to 10 kHz; the
        // anti-alias filter must crush it first.
        let fs = 1e6;
        let x = tone(90e3, fs, 8000);
        let y = decimate(&x, 10);
        assert!(crate::stats::rms(&y[100..700]) < 0.05);
    }

    #[test]
    fn naive_decimation_would_alias() {
        // Sanity check of the test above: plain step_by keeps the alias.
        let fs = 1e6;
        let x = tone(90e3, fs, 8000);
        let naive: Vec<f64> = x.iter().step_by(10).copied().collect();
        assert!(crate::stats::rms(&naive) > 0.5);
    }

    #[test]
    fn linear_resampling_roundtrip() {
        let x = tone(5e3, 1e6, 2000);
        let up = resample_linear(&x, 1e6, 2e6);
        let back = resample_linear(&up, 2e6, 1e6);
        for i in 10..1900 {
            assert!((back[i] - x[i]).abs() < 0.01, "sample {i}");
        }
    }

    #[test]
    fn resample_length_scales() {
        let x = vec![0.0; 1000];
        assert_eq!(resample_linear(&x, 1e6, 0.5e6).len(), 500);
        assert_eq!(resample_linear(&x, 1e6, 2e6).len(), 2000);
    }

    #[test]
    fn fractional_delay_shifts_ramp() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y = fractional_delay(&x, 2.5);
        // y[i] = x[i - 2.5] = i - 2.5 on the interior.
        for (i, &v) in y.iter().enumerate().take(99).skip(5) {
            assert!((v - (i as f64 - 2.5)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_factor_rejected() {
        decimate(&[1.0], 0);
    }
}
