//! Spectral estimation: periodograms, Welch-averaged power spectral
//! density, and spectrograms.
//!
//! Used for analysis tooling (inspecting beat spectra, verifying noise
//! floors against the budget) and by the AP's diagnostics.

use crate::complex::{Complex, ZERO};
use crate::fft::{fft, fft_frequencies, Direction, FftPlanner};
use crate::window::Window;

/// One-shot periodogram of a complex signal: `(frequencies, PSD)` with the
/// PSD in power per Hz (two-sided, FFT-ordered).
///
/// # Panics
/// Panics for an empty signal or non-positive sample rate.
pub fn periodogram(x: &[Complex], sample_rate: f64, window: Window) -> (Vec<f64>, Vec<f64>) {
    assert!(!x.is_empty(), "empty signal");
    assert!(sample_rate > 0.0);
    let n = x.len();
    let mut buf = x.to_vec();
    window.apply_complex(&mut buf);
    let spec = fft(&buf);
    // Normalize by the window's incoherent energy so white noise of power
    // σ² integrates back to σ².
    let w_energy: f64 = (0..n).map(|i| window.value(i, n).powi(2)).sum();
    let scale = 1.0 / (sample_rate * w_energy);
    let psd: Vec<f64> = spec.iter().map(|z| z.norm_sqr() * scale).collect();
    (fft_frequencies(n, sample_rate), psd)
}

/// Welch PSD estimate: averaged periodograms over 50%-overlapped segments.
///
/// # Panics
/// Panics if `segment_len` is zero or exceeds the signal length.
pub fn welch_psd(
    x: &[Complex],
    sample_rate: f64,
    segment_len: usize,
    window: Window,
) -> (Vec<f64>, Vec<f64>) {
    assert!(
        segment_len > 0 && segment_len <= x.len(),
        "bad segment length"
    );
    assert!(sample_rate > 0.0);
    let hop = (segment_len / 2).max(1);
    // Plan, window energy, and segment/scratch buffers are hoisted out of
    // the segment loop — the loop body performs no heap allocation.
    let plan = FftPlanner::plan(segment_len);
    let mut buf = vec![ZERO; segment_len];
    let mut scratch = vec![0.0f64; plan.scratch_len()];
    let w_energy: f64 = (0..segment_len)
        .map(|i| window.value(i, segment_len).powi(2))
        .sum();
    let scale = 1.0 / (sample_rate * w_energy);
    let mut acc = vec![0.0f64; segment_len];
    let mut count = 0usize;
    let mut start = 0usize;
    while start + segment_len <= x.len() {
        buf.copy_from_slice(&x[start..start + segment_len]);
        window.apply_complex(&mut buf);
        plan.process_with_scratch(&mut buf, &mut scratch, Direction::Forward);
        for (a, z) in acc.iter_mut().zip(&buf) {
            *a += z.norm_sqr() * scale;
        }
        count += 1;
        start += hop;
    }
    for a in &mut acc {
        *a /= count as f64;
    }
    (fft_frequencies(segment_len, sample_rate), acc)
}

/// Total power recovered by integrating a PSD (trapezoid over uniform bins).
pub fn integrate_psd(psd: &[f64], sample_rate: f64) -> f64 {
    let df = sample_rate / psd.len() as f64;
    psd.iter().sum::<f64>() * df
}

/// A magnitude spectrogram: rows are time frames, columns frequency bins.
///
/// # Panics
/// Panics if `frame_len` is zero, exceeds the signal, or `hop` is zero.
pub fn spectrogram(x: &[Complex], frame_len: usize, hop: usize, window: Window) -> Vec<Vec<f64>> {
    assert!(frame_len > 0 && frame_len <= x.len(), "bad frame length");
    assert!(hop > 0, "hop must be positive");
    // One plan and one frame/scratch buffer pair reused across all frames.
    let plan = FftPlanner::plan(frame_len);
    let mut buf = vec![ZERO; frame_len];
    let mut scratch = vec![0.0f64; plan.scratch_len()];
    let mut frames = Vec::new();
    let mut start = 0usize;
    while start + frame_len <= x.len() {
        buf.copy_from_slice(&x[start..start + frame_len]);
        window.apply_complex(&mut buf);
        plan.process_with_scratch(&mut buf, &mut scratch, Direction::Forward);
        frames.push(buf.iter().map(|z| z.norm()).collect());
        start += hop;
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::GaussianSource;
    use std::f64::consts::PI;

    fn ctone(freq: f64, fs: f64, n: usize, amp: f64) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::cis(2.0 * PI * freq * i as f64 / fs).scale(amp))
            .collect()
    }

    #[test]
    fn periodogram_peaks_at_tone() {
        let fs = 1e6;
        let x = ctone(200e3, fs, 1024, 1.0);
        let (freqs, psd) = periodogram(&x, fs, Window::Hann);
        let peak = crate::detect::find_peak(&psd).unwrap();
        assert!((freqs[peak.index] - 200e3).abs() < fs / 1024.0 * 1.5);
    }

    #[test]
    fn white_noise_psd_integrates_to_power() {
        let mut rng = GaussianSource::new(1);
        let noise_power = 0.25;
        let x = rng.complex_noise(1 << 15, noise_power);
        let (_, psd) = welch_psd(&x, 1e6, 512, Window::Hann);
        let total = integrate_psd(&psd, 1e6);
        assert!(
            (total - noise_power).abs() / noise_power < 0.1,
            "total {total}"
        );
    }

    #[test]
    fn welch_variance_below_periodogram() {
        // Averaging reduces the estimator variance: Welch's PSD of white
        // noise is much flatter than a single periodogram.
        let mut rng = GaussianSource::new(2);
        let x = rng.complex_noise(1 << 14, 1.0);
        let (_, p1) = periodogram(&x[..512], 1.0, Window::Hann);
        let (_, pw) = welch_psd(&x, 1.0, 512, Window::Hann);
        let rel_var = |p: &[f64]| {
            let m = crate::stats::mean(p);
            crate::stats::variance(p) / (m * m)
        };
        assert!(rel_var(&pw) < rel_var(&p1) / 4.0);
    }

    #[test]
    fn tone_power_recovered_from_psd() {
        // A unit-amplitude complex tone carries power 1.0.
        let fs = 1e6;
        let x = ctone(125e3, fs, 4096, 1.0);
        let (_, psd) = periodogram(&x, fs, Window::Hann);
        let total = integrate_psd(&psd, fs);
        assert!((total - 1.0).abs() < 0.05, "total {total}");
    }

    #[test]
    fn spectrogram_tracks_chirp() {
        // A slow chirp's per-frame peak bin must move monotonically.
        let fs = 1e6;
        let n = 8192;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                Complex::cis(2.0 * PI * (50e3 * t + 0.5 * 3e7 * t * t))
            })
            .collect();
        let frames = spectrogram(&x, 512, 512, Window::Hann);
        let peaks: Vec<usize> = frames
            .iter()
            .map(|f| crate::detect::find_peak(&f[..256]).unwrap().index)
            .collect();
        for w in peaks.windows(2) {
            assert!(w[1] >= w[0], "chirp should sweep upward: {peaks:?}");
        }
        assert!(peaks.last().unwrap() > &(peaks[0] + 3));
    }

    #[test]
    #[should_panic(expected = "bad segment length")]
    fn welch_rejects_oversized_segment() {
        welch_psd(&[Complex::real(1.0); 8], 1.0, 16, Window::Hann);
    }
}
