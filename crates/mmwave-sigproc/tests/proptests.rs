//! Property-based tests over the DSP substrate's algebraic invariants,
//! with randomized inputs. Complements the unit tests inside each module.

use mmwave_sigproc::complex::Complex;
use mmwave_sigproc::detect::{find_peak, midpoint_threshold, refine_peak};
use mmwave_sigproc::fft::{fft, fft_frequencies, fftshift, ifft, Direction, FftPlanner};
use mmwave_sigproc::filter::{FirFilter, RcFilter};
use mmwave_sigproc::resample::{decimate, fractional_delay, resample_linear};
use mmwave_sigproc::stats;
use mmwave_sigproc::units;
use mmwave_sigproc::waveform::{Chirp, OaqfmSymbol};
use mmwave_sigproc::window::Window;
use proptest::prelude::*;

proptest! {
    /// Complex field axioms hold numerically.
    #[test]
    fn complex_field_axioms(
        ar in -1e3f64..1e3, ai in -1e3f64..1e3,
        br in -1e3f64..1e3, bi in -1e3f64..1e3,
        cr in -1e3f64..1e3, ci in -1e3f64..1e3,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        let c = Complex::new(cr, ci);
        // Distributivity.
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs - rhs).norm() <= 1e-9 * (1.0 + lhs.norm()));
        // |ab| = |a||b|.
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() <= 1e-9 * (1.0 + a.norm() * b.norm()));
        // Conjugation is an automorphism.
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).norm() < 1e-9 * (1.0 + a.norm() * b.norm()));
    }

    /// FFT is linear: F(αx + y) = αF(x) + F(y).
    #[test]
    fn fft_linearity(
        n in 2usize..96,
        alpha in -3.0f64..3.0,
        seed in 0u64..1000,
    ) {
        let mut rng = mmwave_sigproc::random::GaussianSource::new(seed);
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(rng.standard(), rng.standard())).collect();
        let y: Vec<Complex> = (0..n).map(|_| Complex::new(rng.standard(), rng.standard())).collect();
        let combo: Vec<Complex> = x.iter().zip(&y).map(|(&a, &b)| a.scale(alpha) + b).collect();
        let lhs = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        for k in 0..n {
            let rhs = fx[k].scale(alpha) + fy[k];
            prop_assert!((lhs[k] - rhs).norm() < 1e-7 * (1.0 + rhs.norm()));
        }
    }

    /// The allocation-free scratch API agrees bit-for-bit with the one-shot
    /// `fft()` for any length (power-of-two and Bluestein alike), even with
    /// a dirtied scratch buffer, and its forward→inverse round trip
    /// recovers the input.
    #[test]
    fn scratch_api_matches_oneshot_and_roundtrips(n in 1usize..200, seed in 0u64..1000) {
        let mut rng = mmwave_sigproc::random::GaussianSource::new(seed);
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(rng.standard(), rng.standard())).collect();
        let plan = FftPlanner::plan(n);
        let mut buf = x.clone();
        let mut scratch = vec![7.5f64; plan.scratch_len()]; // deliberately dirty
        plan.process_with_scratch(&mut buf, &mut scratch, Direction::Forward);
        let reference = fft(&x);
        for k in 0..n {
            prop_assert!(buf[k] == reference[k], "bin {k}: {:?} vs {:?}", buf[k], reference[k]);
        }
        scratch.fill(-3.25); // dirty again before the inverse
        plan.process_with_scratch(&mut buf, &mut scratch, Direction::Inverse);
        for k in 0..n {
            prop_assert!((buf[k] - x[k]).norm() < 1e-9 * (1.0 + x[k].norm()));
        }
    }

    /// A circular shift in time multiplies the spectrum by a phase ramp
    /// (shift theorem) — magnitude spectra are shift-invariant.
    #[test]
    fn fft_shift_theorem_magnitudes(n in 4usize..64, shift in 1usize..32, seed in 0u64..500) {
        let shift = shift % n;
        let mut rng = mmwave_sigproc::random::GaussianSource::new(seed);
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(rng.standard(), rng.standard())).collect();
        let mut rolled = x.clone();
        rolled.rotate_left(shift);
        let a = fft(&x);
        let b = fft(&rolled);
        for k in 0..n {
            prop_assert!((a[k].norm() - b[k].norm()).abs() < 1e-8 * (1.0 + a[k].norm()));
        }
    }

    /// fftshift is an involution for even lengths.
    #[test]
    fn fftshift_involution(n in 1usize..40) {
        let n = n * 2; // even
        let x: Vec<usize> = (0..n).collect();
        prop_assert_eq!(fftshift(&fftshift(&x)), x);
    }

    /// fft_frequencies is consistent: bin spacing fs/N, DC at 0.
    #[test]
    fn fft_frequency_grid(n in 2usize..256, fs in 1.0f64..1e9) {
        let f = fft_frequencies(n, fs);
        prop_assert_eq!(f[0], 0.0);
        let df = fs / n as f64;
        prop_assert!((f[1] - df).abs() < 1e-6 * df);
        // All magnitudes within Nyquist.
        for &v in &f {
            prop_assert!(v.abs() <= fs / 2.0 + 1e-6);
        }
    }

    /// dB conversions are inverse bijections on positive reals.
    #[test]
    fn db_bijection(x in 1e-12f64..1e12) {
        prop_assert!((units::db_to_lin(units::lin_to_db(x)) - x).abs() <= 1e-9 * x);
        prop_assert!((units::dbm_to_watts(units::watts_to_dbm(x)) - x).abs() <= 1e-9 * x);
    }

    /// Wrapped angles stay in (−π, π] and preserve the phasor.
    #[test]
    fn angle_wrap_preserves_phasor(theta in -100.0f64..100.0) {
        let w = units::wrap_angle(theta);
        prop_assert!(w > -std::f64::consts::PI - 1e-12 && w <= std::f64::consts::PI + 1e-12);
        prop_assert!((Complex::cis(theta) - Complex::cis(w)).norm() < 1e-9);
    }

    /// FIR low-pass DC gain is one, independent of design parameters.
    #[test]
    fn fir_dc_gain(cut_frac in 0.01f64..0.45, taps in 3usize..101) {
        let fs = 1e6;
        let fir = FirFilter::low_pass(cut_frac * fs, fs, taps, Window::Hamming);
        prop_assert!((fir.taps().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// RC step response is monotone and bounded by the input.
    #[test]
    fn rc_step_monotone(tau in 1e-9f64..1e-3, steps in 2usize..500) {
        let dt = tau / 10.0;
        let mut rc = RcFilter::from_time_constant(tau, dt);
        let mut prev = 0.0;
        for _ in 0..steps {
            let y = rc.step(1.0);
            prop_assert!(y >= prev - 1e-15 && y <= 1.0 + 1e-12);
            prev = y;
        }
    }

    /// Quadratically refined peaks never leave the ±0.5-sample window.
    #[test]
    fn refined_peak_stays_local(values in proptest::collection::vec(0.0f64..100.0, 3..64)) {
        if let Some(p) = find_peak(&values) {
            prop_assert!((p.position - p.index as f64).abs() <= 0.5 + 1e-12);
            let r = refine_peak(&values, p.index);
            prop_assert_eq!(r.index, p.index);
        }
    }

    /// Midpoint threshold separates any strictly two-level trace.
    #[test]
    fn midpoint_threshold_separates(
        lo in -10.0f64..0.0,
        gap in 0.5f64..10.0,
        pattern in proptest::collection::vec(any::<bool>(), 8..64),
    ) {
        prop_assume!(pattern.iter().any(|&b| b) && pattern.iter().any(|&b| !b));
        let hi = lo + gap;
        let trace: Vec<f64> = pattern.iter().map(|&b| if b { hi } else { lo }).collect();
        let t = midpoint_threshold(&trace).unwrap();
        for (&v, &b) in trace.iter().zip(&pattern) {
            prop_assert_eq!(v > t, b);
        }
    }

    /// Chirp instantaneous frequency stays within the swept band.
    #[test]
    fn chirp_frequency_in_band(
        start in 1e9f64..30e9,
        bw in 1e8f64..5e9,
        dur in 1e-6f64..1e-4,
        frac in 0.0f64..1.0,
        tri in any::<bool>(),
    ) {
        let c = if tri { Chirp::triangular(start, bw, dur) } else { Chirp::sawtooth(start, bw, dur) };
        let f = c.instantaneous_freq(frac * dur * 0.999);
        prop_assert!(f >= start - 1.0 && f <= start + bw + 1.0);
    }

    /// Decimation then linear upsampling approximates identity for
    /// oversampled smooth signals.
    #[test]
    fn decimate_upsample_approximates_identity(factor in 2usize..8, freq_frac in 0.001f64..0.01) {
        let fs = 1e6;
        let n = 4000;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq_frac * fs * i as f64 / fs).sin())
            .collect();
        let d = decimate(&x, factor);
        let up = resample_linear(&d, fs / factor as f64, fs);
        // Compare in the steady-state interior.
        let m = up.len().min(n);
        for i in m / 4..(3 * m / 4) {
            prop_assert!((up[i] - x[i]).abs() < 0.15, "i={i}: {} vs {}", up[i], x[i]);
        }
    }

    /// Fractional delay by d then measuring cross-correlation lag recovers d.
    #[test]
    fn fractional_delay_measurable(delay in 0.0f64..20.0) {
        let n = 256;
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.35).sin() * (-((i as f64 - 60.0) / 25.0).powi(2)).exp()).collect();
        let y = fractional_delay(&x, delay);
        let lag = mmwave_sigproc::detect::best_lag(&y, &x).unwrap();
        prop_assert!((lag - delay).abs() < 0.6, "lag {lag} vs {delay}");
    }

    /// ErrorSummary percentiles are ordered: median ≤ p90 ≤ max.
    #[test]
    fn error_summary_ordered(values in proptest::collection::vec(0.0f64..1e3, 1..200)) {
        let s = stats::ErrorSummary::from_abs_errors(&values);
        prop_assert!(s.median <= s.p90 + 1e-12);
        prop_assert!(s.p90 <= s.max + 1e-12);
        prop_assert!(s.mean <= s.max + 1e-12);
    }

    /// Q-function is a decreasing CDF complement on [0, ∞).
    #[test]
    fn q_function_decreasing(x in 0.0f64..8.0, dx in 0.01f64..2.0) {
        prop_assert!(stats::q_function(x + dx) <= stats::q_function(x));
        prop_assert!(stats::q_function(x) <= 0.5 + 1e-12);
    }

    /// OAQFM symbols are a bijection on two bits.
    #[test]
    fn oaqfm_bijection(bits in 0u8..4) {
        prop_assert_eq!(OaqfmSymbol::from_bits(bits).to_bits(), bits);
    }

    /// IFFT(FFT(x)) round-trips Bluestein lengths specifically.
    #[test]
    fn bluestein_roundtrip(n in proptest::sample::select(vec![3usize, 5, 7, 11, 13, 17, 23, 29, 45, 97])) {
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.9).cos()))
            .collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).norm() < 1e-7);
        }
    }
}
