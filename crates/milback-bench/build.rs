//! Bakes the compiler identity into the binary so `HostInfo` can report
//! which toolchain produced a benchmark artifact.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "rustc (unknown)".into());
    println!("cargo:rustc-env=MILBACK_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
