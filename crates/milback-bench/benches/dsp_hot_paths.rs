//! Criterion benches over the hot DSP paths: FFT plans, beat-signal
//! synthesis, background subtraction, OAQFM demodulation, detector
//! dynamics and the FSA gain evaluation that dominates channel synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use milback_ap::fmcw::FmcwProcessor;
use milback_node::downlink::{OaqfmDemodulator, Thresholds};
use mmwave_rf::antenna::fsa::{FsaDesign, FsaPort};
use mmwave_rf::channel::{synthesize_beat, Echo};
use mmwave_rf::components::EnvelopeDetector;
use mmwave_sigproc::complex::Complex;
use mmwave_sigproc::fft::{Direction, FftPlan};
use mmwave_sigproc::waveform::{bytes_to_symbols, ook_envelope, Chirp};
use mmwave_sigproc::window::Window;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n);
        let buf: Vec<Complex> = (0..n).map(|i| Complex::cis(i as f64 * 0.37)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| {
                let mut x = buf.clone();
                plan.process(&mut x, Direction::Forward);
                x
            })
        });
    }
    // Bluestein path (non-power-of-two, the 900-sample chirp case).
    let n = 900;
    let plan = FftPlan::new(n);
    let buf: Vec<Complex> = (0..n).map(|i| Complex::cis(i as f64 * 0.11)).collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("bluestein_900", |b| {
        b.iter(|| {
            let mut x = buf.clone();
            plan.process(&mut x, Direction::Forward);
            x
        })
    });
    group.finish();
}

fn bench_beat_synthesis(c: &mut Criterion) {
    let chirp = Chirp::sawtooth(26.5e9, 3e9, 18e-6);
    let fsa = FsaDesign::milback_default();
    let mut group = c.benchmark_group("beat_synthesis");
    group.bench_function("clutter_only_5_echoes", |b| {
        b.iter(|| {
            let echoes: Vec<Echo<'_>> = (1..=5).map(|i| Echo::constant(i as f64, 1e-5)).collect();
            synthesize_beat(&chirp, &echoes, 50e6)
        })
    });
    group.bench_function("fsa_node_echo", |b| {
        b.iter(|| {
            let echo = Echo {
                distance_m: 4.0,
                extra_phase_rad: 0.0,
                amplitude: Box::new(move |_, f| {
                    Complex::real(1e-5 * fsa.gain_linear(FsaPort::A, f, 0.2))
                }),
            };
            synthesize_beat(&chirp, &[echo], 50e6)
        })
    });
    group.finish();
}

fn bench_fmcw_pipeline(c: &mut Criterion) {
    let proc = FmcwProcessor::milback_default();
    let chirp = proc.chirp;
    let beats: Vec<Vec<Complex>> = (0..5)
        .map(|k| {
            let amp = if k % 2 == 0 { 1e-5 } else { 0.2e-5 };
            synthesize_beat(
                &chirp,
                &[Echo::constant(2.0, 3e-4), Echo::constant(4.0, amp)],
                proc.sample_rate_hz,
            )
        })
        .collect();
    let mut group = c.benchmark_group("fmcw");
    group.bench_function("range_spectrum", |b| {
        b.iter(|| proc.range_spectrum(&beats[0]))
    });
    group.bench_function("detect_node_5_chirps", |b| {
        b.iter(|| proc.detect_node(&beats))
    });
    group.finish();
}

fn bench_oaqfm_demod(c: &mut Criterion) {
    let payload: Vec<u8> = (0..256).map(|i| (i * 37 % 256) as u8).collect();
    let syms = bytes_to_symbols(&payload);
    let sps = 11;
    let la: Vec<f64> = syms
        .iter()
        .map(|s| if s.tone_a { 0.01 } else { 0.0 })
        .collect();
    let lb: Vec<f64> = syms
        .iter()
        .map(|s| if s.tone_b { 0.01 } else { 0.0 })
        .collect();
    let ta = ook_envelope(&la, sps);
    let tb = ook_envelope(&lb, sps);
    let demod = OaqfmDemodulator::new(sps);
    let mut group = c.benchmark_group("oaqfm");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("demodulate_256B", |b| {
        b.iter(|| demod.demodulate(&ta, &tb, Thresholds { a: 0.005, b: 0.005 }))
    });
    group.bench_function("demodulate_auto_256B", |b| {
        b.iter(|| demod.demodulate_auto(&ta, &tb))
    });
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let det = EnvelopeDetector::adl6010();
    let power: Vec<f64> = (0..4096)
        .map(|i| if (i / 64) % 2 == 0 { 1e-5 } else { 0.0 })
        .collect();
    let mut group = c.benchmark_group("components");
    group.throughput(Throughput::Elements(power.len() as u64));
    group.bench_function("detector_trace_4096", |b| {
        b.iter(|| det.trace(&power, 5e-9))
    });
    let fsa = FsaDesign::milback_default();
    group.bench_function("fsa_gain_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                let f = 26.5e9 + 3e9 * i as f64 / 100.0;
                acc += fsa.gain_linear(FsaPort::A, f, 0.15);
            }
            acc
        })
    });
    group.bench_function("window_hann_4096", |b| {
        b.iter(|| Window::Hann.coefficients(4096))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fft, bench_beat_synthesis, bench_fmcw_pipeline, bench_oaqfm_demod, bench_components
}
criterion_main!(benches);
