//! Criterion benches that run reduced-size versions of every paper
//! experiment, so `cargo bench` exercises each figure/table pipeline
//! end-to-end and tracks its cost over time.

use criterion::{criterion_group, criterion_main, Criterion};
use milback_baselines::{capability_table, MilBackSystem, Millimetro, MmTag, OmniScatter};
use milback_core::{LinkSimulator, LocalizationPipeline, Scene, SystemConfig};
use milback_node::power::{NodeActivity, NodePowerModel};
use mmwave_rf::antenna::fsa::{FsaDesign, FsaPort};
use mmwave_sigproc::random::GaussianSource;

fn fig10_pattern(c: &mut Criterion) {
    let fsa = FsaDesign::milback_default();
    c.bench_function("fig10_fsa_pattern_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..7 {
                let f = 26.5e9 + 0.5e9 * i as f64;
                for a in -45..=45 {
                    acc += fsa.gain_dbi(FsaPort::A, f, (a as f64).to_radians());
                }
            }
            acc
        })
    });
}

fn fig12_localization(c: &mut Criterion) {
    let pipeline = LocalizationPipeline::new(
        SystemConfig::milback_default(),
        Scene::indoor(4.0, 12f64.to_radians()),
    )
    .unwrap();
    c.bench_function("fig12_localize_one_fix", |b| {
        let mut rng = GaussianSource::new(1);
        b.iter(|| pipeline.localize(&mut rng))
    });
}

fn fig13_orientation(c: &mut Criterion) {
    let pipeline = LocalizationPipeline::new(
        SystemConfig::milback_default(),
        Scene::indoor(2.0, 10f64.to_radians()),
    )
    .unwrap();
    let mut group = c.benchmark_group("fig13_orientation");
    group.sample_size(10);
    group.bench_function("at_ap", |b| {
        let mut rng = GaussianSource::new(2);
        b.iter(|| pipeline.orient_at_ap(&mut rng))
    });
    group.bench_function("at_node", |b| {
        let mut rng = GaussianSource::new(3);
        b.iter(|| pipeline.orient_at_node(&mut rng))
    });
    group.finish();
}

fn fig14_downlink(c: &mut Criterion) {
    let sim = LinkSimulator::new(
        SystemConfig::milback_default(),
        Scene::single_node(4.0, 12f64.to_radians()),
    )
    .unwrap();
    c.bench_function("fig14_downlink_64B", |b| {
        let mut rng = GaussianSource::new(4);
        let payload: Vec<u8> = (0..64).collect();
        b.iter(|| sim.downlink(&payload, &mut rng))
    });
}

fn fig15_uplink(c: &mut Criterion) {
    let sim = LinkSimulator::new(
        SystemConfig::milback_default(),
        Scene::single_node(5.0, 12f64.to_radians()),
    )
    .unwrap();
    c.bench_function("fig15_uplink_1KB", |b| {
        let mut rng = GaussianSource::new(5);
        let payload: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        b.iter(|| sim.uplink(&payload, &mut rng))
    });
}

fn table1_and_power(c: &mut Criterion) {
    c.bench_function("table1_capability_probe", |b| {
        b.iter(|| {
            let mmtag = MmTag::published();
            let millimetro = Millimetro::published();
            let omni = OmniScatter::published();
            let milback = MilBackSystem::published();
            capability_table(&[&mmtag, &millimetro, &omni, &milback])
        })
    });
    c.bench_function("power_rollup", |b| {
        let m = NodePowerModel::milback_default();
        b.iter(|| {
            (
                m.power_w(NodeActivity::Downlink),
                m.power_w(NodeActivity::Uplink),
                m.energy_per_bit_j(NodeActivity::Uplink, 40e6),
            )
        })
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(15);
    targets = fig10_pattern, fig12_localization, fig13_orientation, fig14_downlink, fig15_uplink, table1_and_power
}
criterion_main!(experiments);
