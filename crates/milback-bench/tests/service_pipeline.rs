//! Acceptance suite for the staged AP service pipeline
//! (**Capture → Plan → Transmit**, [`milback_core::ApServiceConfig`]):
//!
//! * the zero-latency/unbounded configuration reproduces `run_mac`
//!   bit-for-bit for every policy, through the trial runner, at any
//!   thread count (the instantaneous-parity half of the determinism
//!   contract — the existing `mac_parity` suite covers the engine-vs-
//!   direct half, which now routes through the pipeline too);
//! * nonzero latency with unbounded queues shifts event timestamps but
//!   not physics: same FIFO order, same RNG stream, same node ledgers;
//! * each overflow policy does what it says: `Drop` sheds grants before
//!   they transmit, `Defer` admits and counts the spill, `Degrade`
//!   serves everything but collapses SDM concurrency;
//! * latency jitter draws only from the trial stream, so jittered runs
//!   are reproducible seed-for-seed.

use milback_bench::experiments::mac_policy_by_name;
use milback_bench::runner::trial_rng;
use milback_core::protocol::SlotPlan;
use milback_core::{
    ApServiceConfig, Network, OverflowPolicy, Packet, Scene, SlottedRunReport, SystemConfig,
};

const MAC_POLICY_NAMES: [&str; 4] = ["aloha", "backoff", "polling", "sdm"];

fn network(n: usize) -> Network {
    let mut scene = Scene::single_node(4.0, 12f64.to_radians());
    scene.nodes.clear();
    for k in 0..n {
        let az = if n == 1 {
            0.0
        } else {
            (-35.0 + 70.0 * k as f64 / (n - 1) as f64).to_radians()
        };
        scene = scene.with_node_at(4.0, az, 12f64.to_radians());
    }
    Network::new(SystemConfig::milback_default(), scene).unwrap()
}

fn plan_for(n: &Network, slots: usize, payload: &[u8]) -> SlotPlan {
    SlotPlan::for_packet(
        slots,
        &Packet::uplink(payload.to_vec()),
        &n.config.fmcw,
        n.config.uplink_symbol_rate_hz,
        10e-6,
    )
    .unwrap()
}

fn assert_bit_exact(a: &SlottedRunReport, b: &SlottedRunReport) {
    assert_eq!(a, b);
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(na.energy_j.to_bits(), nb.energy_j.to_bits());
        assert_eq!(
            na.mean_snr_db.map(f64::to_bits),
            nb.mean_snr_db.map(f64::to_bits)
        );
    }
}

fn run_with(
    n: &Network,
    policy: &str,
    seed_trial: usize,
    service: &ApServiceConfig,
) -> SlottedRunReport {
    let payload = vec![0x42u8; 16];
    let plan = plan_for(n, 3, &payload);
    let mut rng = trial_rng(0x51A6, seed_trial);
    n.run_mac_service(
        mac_policy_by_name(policy, 9).unwrap(),
        6,
        &payload,
        &plan,
        20.0,
        &mut rng,
        service,
    )
    .unwrap()
}

/// An explicit instantaneous config is bit-exact with `run_mac` for every
/// policy, and its service ledger shows every offered grant served.
#[test]
fn instantaneous_config_reproduces_run_mac_for_every_policy() {
    let n = network(5);
    let payload = vec![0x42u8; 16];
    let plan = plan_for(&n, 3, &payload);
    for (k, &name) in MAC_POLICY_NAMES.iter().enumerate() {
        let mut rng_a = trial_rng(0x51A6, k);
        let mut rng_b = trial_rng(0x51A6, k);
        let plain = n
            .run_mac(
                mac_policy_by_name(name, 9).unwrap(),
                6,
                &payload,
                &plan,
                20.0,
                &mut rng_a,
            )
            .unwrap();
        let staged = n
            .run_mac_service(
                mac_policy_by_name(name, 9).unwrap(),
                6,
                &payload,
                &plan,
                20.0,
                &mut rng_b,
                &ApServiceConfig::instantaneous(),
            )
            .unwrap();
        assert_bit_exact(&plain, &staged);
        assert_eq!(rng_a.sample(1.0).to_bits(), rng_b.sample(1.0).to_bits());
        assert!(plain.service.offered > 0, "policy {name} offered nothing");
        assert_eq!(plain.service.served, plain.service.offered);
        assert_eq!(plain.service.overflowed(), 0);
    }
}

/// Nonzero stage latencies with unbounded queues serve grants late but in
/// FIFO order, so the RNG stream is consumed identically: node ledgers are
/// bit-exact with the instantaneous run for every policy. The one ledger
/// that *should* move is the lifecycle's service-residence sketch — jobs
/// genuinely sit in the pipeline now — so it is compared positively, not
/// normalized away silently.
#[test]
fn unbounded_latency_shifts_time_but_not_ledgers() {
    let n = network(5);
    let slow = ApServiceConfig::instantaneous().with_stage_latencies(1_000_000, 500_000, 250_000);
    for (k, &name) in MAC_POLICY_NAMES.iter().enumerate() {
        let instant = run_with(&n, name, k, &ApServiceConfig::instantaneous());
        let staged = run_with(&n, name, k, &slow);
        #[cfg(feature = "telemetry")]
        assert!(
            staged.lifecycle.service_residence_us.sum > 0.0,
            "policy {name}: a slow pipeline must show nonzero residence"
        );
        assert_eq!(
            staged.lifecycle.service_residence_us.count, staged.lifecycle.slot_wait_us.count,
            "every packet reaching the channel gets one residence observation"
        );
        let mut expected = instant.clone();
        expected.lifecycle.service_residence_us = staged.lifecycle.service_residence_us.clone();
        assert_bit_exact(&expected, &staged);
    }
}

/// `Drop` with a zero-capacity queue and a capture stage slower than the
/// slot spacing sheds grants: dropped grants never transmit, so attempts
/// (and energy) fall below the instantaneous run.
#[test]
fn drop_policy_sheds_offered_load() {
    let n = network(6);
    let payload = vec![0x42u8; 16];
    let plan = plan_for(&n, 3, &payload);
    let congested = ApServiceConfig::instantaneous()
        .with_stage_latencies(4 * plan.slot_ps, 0, 0)
        .with_queue(0, OverflowPolicy::Drop);
    let instant = run_with(&n, "aloha", 0, &ApServiceConfig::instantaneous());
    let dropped = run_with(&n, "aloha", 0, &congested);
    assert_eq!(dropped.service.offered, instant.service.offered);
    assert!(dropped.service.dropped > 0, "congestion must shed load");
    assert_eq!(
        dropped.service.served + dropped.service.dropped,
        dropped.service.offered,
        "every grant is either served or dropped"
    );
    let attempts = |r: &SlottedRunReport| r.nodes.iter().map(|x| x.attempts).sum::<usize>();
    assert!(
        attempts(&dropped) < attempts(&instant),
        "dropped grants must never reach the air"
    );
}

/// `Defer` admits past the bound: everything is served (late), the spill
/// is counted, and the ledgers still match the instantaneous run exactly
/// (FIFO order preserves the draw order).
#[test]
fn defer_policy_counts_spill_and_preserves_ledgers() {
    let n = network(6);
    let payload = vec![0x42u8; 16];
    let plan = plan_for(&n, 3, &payload);
    let congested = ApServiceConfig::instantaneous()
        .with_stage_latencies(4 * plan.slot_ps, 0, 0)
        .with_queue(0, OverflowPolicy::Defer);
    let instant = run_with(&n, "aloha", 0, &ApServiceConfig::instantaneous());
    let deferred = run_with(&n, "aloha", 0, &congested);
    assert!(deferred.service.deferred > 0, "congestion must spill");
    assert_eq!(deferred.service.served, deferred.service.offered);
    #[cfg(feature = "telemetry")]
    assert!(
        deferred.lifecycle.service_residence_us.sum > 0.0,
        "deferred grants must show nonzero pipeline residence"
    );
    let mut expected = instant.clone();
    expected.service = deferred.service;
    expected.lifecycle.service_residence_us = deferred.lifecycle.service_residence_us.clone();
    assert_bit_exact(&expected, &deferred);
}

/// `Degrade` serves every grant but admits overflow with a cheap plan that
/// skips SDM arbitration: degraded multi-node slots collapse to
/// collisions, so collisions can only grow versus the instantaneous run.
#[test]
fn degrade_policy_trades_concurrency_for_service() {
    let n = network(8);
    let payload = vec![0x42u8; 16];
    // Two slots over eight nodes: multi-node groups every frame, so a
    // degraded grant has concurrency to lose.
    let plan = plan_for(&n, 2, &payload);
    let congested = ApServiceConfig::instantaneous()
        .with_stage_latencies(4 * plan.slot_ps, 0, 0)
        .with_queue(0, OverflowPolicy::Degrade);
    let run = |service: &ApServiceConfig| {
        let mut rng = trial_rng(0x51A6, 0);
        n.run_mac_service(
            mac_policy_by_name("aloha", 9).unwrap(),
            6,
            &payload,
            &plan,
            20.0,
            &mut rng,
            service,
        )
        .unwrap()
    };
    let instant = run(&ApServiceConfig::instantaneous());
    let degraded = run(&congested);
    assert!(degraded.service.degraded > 0, "congestion must degrade");
    assert_eq!(degraded.service.served, degraded.service.offered);
    assert_eq!(degraded.service.dropped, 0);
    let collisions = |r: &SlottedRunReport| r.nodes.iter().map(|x| x.collisions).sum::<usize>();
    assert!(
        collisions(&degraded) >= collisions(&instant),
        "skipping SDM arbitration cannot reduce collisions"
    );
}

/// Latency jitter draws exactly one seed from the trial stream, so
/// jittered campaigns reproduce seed-for-seed.
#[test]
fn jittered_campaigns_are_reproducible() {
    let n = network(5);
    let jittered = ApServiceConfig::instantaneous()
        .with_stage_latencies(100_000, 100_000, 100_000)
        .with_jitter(50_000);
    let a = run_with(&n, "aloha", 3, &jittered);
    let b = run_with(&n, "aloha", 3, &jittered);
    assert_bit_exact(&a, &b);
    assert!(a.service.offered > 0);
}
