//! Parity and determinism suite for the `MacPolicy` layer: slotted ALOHA
//! behind the trait must stay bit-identical to the retained pre-refactor
//! `run_slotted_direct`, and every policy must produce the same campaign
//! report through the trial-parallel runner at every thread count
//! `MILBACK_THREADS` resolves to.

use milback_bench::experiments::{extension_mac_compare, MAC_POLICY_NAMES};
use milback_bench::runner::{run_trials, trial_rng, RunnerConfig};
use milback_core::protocol::SlotPlan;
use milback_core::{Network, Packet, Scene, SlottedRunReport, SystemConfig};

fn network() -> Network {
    let scene = Scene::single_node(4.0, 12f64.to_radians())
        .with_node_at(4.5, 35f64.to_radians(), 12f64.to_radians())
        .with_node_at(3.5, -30f64.to_radians(), 12f64.to_radians());
    Network::new(SystemConfig::milback_default(), scene).unwrap()
}

fn plan_for(n: &Network, slots: usize, payload: &[u8]) -> SlotPlan {
    let packet = Packet::uplink(payload.to_vec());
    SlotPlan::for_packet(
        slots,
        &packet,
        &n.config.fmcw,
        n.config.uplink_symbol_rate_hz,
        10e-6,
    )
    .unwrap()
}

/// Float-bit equality across two campaign reports — stricter than
/// `PartialEq`, catches -0.0/rounding drift that `==` would forgive.
fn assert_bit_exact(a: &SlottedRunReport, b: &SlottedRunReport) {
    assert_eq!(a, b);
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(na.energy_j.to_bits(), nb.energy_j.to_bits());
        assert_eq!(
            na.mean_snr_db.map(f64::to_bits),
            nb.mean_snr_db.map(f64::to_bits)
        );
    }
}

/// The ALOHA-behind-the-trait refactor is bit-exact with the retained
/// pre-refactor `run_slotted_direct`, trial by trial on shared streams.
/// (`Option<f64>` in the report is what makes the `==` half of this
/// assertable — the old NaN sentinel compared unequal to itself.)
#[test]
fn trait_aloha_matches_direct_through_trial_streams() {
    let n = network();
    let payload = vec![0x42u8; 16];
    let plan = plan_for(&n, 4, &payload);
    for trial in 0..4 {
        let mut rng_t = trial_rng(0xACE5, trial);
        let mut rng_d = trial_rng(0xACE5, trial);
        let engine = n
            .run_slotted(6, &payload, &plan, trial as u64, 20.0, &mut rng_t)
            .unwrap();
        let direct = n
            .run_slotted_direct(6, &payload, &plan, trial as u64, 20.0, &mut rng_d)
            .unwrap();
        assert_bit_exact(&engine, &direct);
        // The streams advanced identically too.
        assert_eq!(rng_t.sample(1.0).to_bits(), rng_d.sample(1.0).to_bits());
    }
}

/// Same parity, but through the runner at thread counts 1/2/4/8: the
/// trait path and the direct path are interchangeable under scheduling.
#[test]
fn trait_aloha_matches_direct_at_every_thread_count() {
    let run = |threads: usize, direct: bool| {
        run_trials(
            6,
            0xA10,
            &RunnerConfig::with_threads(threads),
            move |i, rng| {
                let n = network();
                let payload = vec![0x42u8; 16];
                let plan = plan_for(&n, 4, &payload);
                if direct {
                    n.run_slotted_direct(4 + i, &payload, &plan, i as u64, 20.0, rng)
                        .unwrap()
                } else {
                    n.run_slotted(4 + i, &payload, &plan, i as u64, 20.0, rng)
                        .unwrap()
                }
            },
        )
    };
    let reference = run(1, false);
    for (a, b) in reference.iter().zip(&run(1, true)) {
        assert_bit_exact(a, b);
    }
    for threads in [2, 4, 8] {
        assert_eq!(reference, run(threads, false), "trait path @ {threads}");
        assert_eq!(reference, run(threads, true), "direct path @ {threads}");
    }
}

/// Every MAC policy is schedule-invariant through the runner: the whole
/// policy × node-count sweep is bit-identical at `MILBACK_THREADS`
/// 1/2/4/8.
#[test]
fn all_policies_thread_count_invariant() {
    let node_counts = [1, 3, 5];
    let run = |threads: usize| {
        extension_mac_compare(
            &MAC_POLICY_NAMES,
            &node_counts,
            4,
            8,
            4,
            0x3AC,
            &RunnerConfig::with_threads(threads),
        )
    };
    let reference = run(1);
    assert_eq!(
        reference.ok_count(),
        MAC_POLICY_NAMES.len() * node_counts.len(),
        "every cell must simulate"
    );
    for threads in [2, 4, 8] {
        assert_eq!(
            reference,
            run(threads),
            "sweep changed at {threads} threads"
        );
    }
}

/// The sweep's ALOHA rows reproduce the `extension_net_scale` baseline:
/// same root seed, same slot seeds, same campaigns, same numbers.
#[test]
fn mac_compare_aloha_rows_reproduce_net_scale() {
    use milback_bench::experiments::extension_net_scale;
    let node_counts = [1, 2, 4];
    let cfg = RunnerConfig::serial();
    let base = extension_net_scale(&node_counts, 4, 8, 4, 0xE4, &cfg);
    let sweep = extension_mac_compare(&["aloha"], &node_counts, 4, 8, 4, 0xE4, &cfg);
    for (b, s) in base.oks().zip(sweep.oks()) {
        assert_eq!(b.nodes, s.nodes);
        assert_eq!(b.delivery_rate.to_bits(), s.delivery_rate.to_bits());
        assert_eq!(
            b.energy_per_packet_j.map(f64::to_bits),
            s.energy_per_packet_j.map(f64::to_bits)
        );
        assert_eq!(
            b.per_node_goodput_bps.to_bits(),
            s.per_node_goodput_bps.to_bits()
        );
    }
}
