//! Non-perturbation suite for the telemetry layer: attaching probes,
//! metrics registries, or trace sinks must never change a simulation
//! result. Every test here drives the instrumented and uninstrumented
//! paths on identical trial streams and demands bit-for-bit equality —
//! `==` plus `to_bits` on every float — through the trial-parallel runner
//! at `MILBACK_THREADS` 1/2/4/8, for all four MAC policies.
//!
//! The suite also passes with `--no-default-features` (telemetry compiled
//! out): the probed entry points still exist, the probes are inert, and
//! the parity half of every assertion is feature-independent.

use milback_bench::experiments::{
    extension_mac_compare, extension_mac_compare_instrumented, MacComparePoint, MAC_POLICY_NAMES,
};
use milback_bench::runner::{trial_rng, RunnerConfig};
use milback_core::protocol::SlotPlan;
use milback_core::{
    CampaignProbe, Network, Packet, Scene, Session, SessionReport, SlottedRunReport, SystemConfig,
};

fn network() -> Network {
    let scene = Scene::single_node(4.0, 12f64.to_radians())
        .with_node_at(4.5, 35f64.to_radians(), 12f64.to_radians())
        .with_node_at(3.5, -30f64.to_radians(), 12f64.to_radians());
    Network::new(SystemConfig::milback_default(), scene).unwrap()
}

fn plan_for(n: &Network, slots: usize, payload: &[u8]) -> SlotPlan {
    let packet = Packet::uplink(payload.to_vec());
    SlotPlan::for_packet(
        slots,
        &packet,
        &n.config.fmcw,
        n.config.uplink_symbol_rate_hz,
        10e-6,
    )
    .unwrap()
}

/// Float-bit equality across two campaign reports — stricter than
/// `PartialEq`, catches -0.0/rounding drift that `==` would forgive.
fn assert_report_bit_exact(a: &SlottedRunReport, b: &SlottedRunReport) {
    assert_eq!(a, b);
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(na.energy_j.to_bits(), nb.energy_j.to_bits());
        assert_eq!(
            na.mean_snr_db.map(f64::to_bits),
            nb.mean_snr_db.map(f64::to_bits)
        );
    }
}

/// Float-bit equality across two sweep cells.
fn assert_point_bit_exact(a: &MacComparePoint, b: &MacComparePoint) {
    assert_eq!(a, b);
    assert_eq!(a.delivery_rate.to_bits(), b.delivery_rate.to_bits());
    assert_eq!(
        a.per_node_goodput_bps.to_bits(),
        b.per_node_goodput_bps.to_bits()
    );
    assert_eq!(
        a.energy_per_packet_j.map(f64::to_bits),
        b.energy_per_packet_j.map(f64::to_bits)
    );
}

/// `run_mac` vs `run_mac_probed` (metrics + full trace) on shared trial
/// streams, for every MAC policy: bit-identical reports, and the RNG
/// streams advanced identically (the probe drew nothing).
#[test]
fn probed_campaign_is_bit_identical_for_every_policy() {
    let n = network();
    let payload = vec![0x42u8; 16];
    let plan = plan_for(&n, 4, &payload);
    for (k, &name) in MAC_POLICY_NAMES.iter().enumerate() {
        let mut rng_plain = trial_rng(0x7E1E, k);
        let mut rng_probed = trial_rng(0x7E1E, k);
        let plain = n
            .run_mac(
                milback_bench::experiments::mac_policy_by_name(name, 9).unwrap(),
                6,
                &payload,
                &plan,
                20.0,
                &mut rng_plain,
            )
            .unwrap();
        let mut probe = CampaignProbe::with_trace(4096);
        let probed = n
            .run_mac_probed(
                milback_bench::experiments::mac_policy_by_name(name, 9).unwrap(),
                6,
                &payload,
                &plan,
                20.0,
                &mut rng_probed,
                &mut probe,
            )
            .unwrap();
        assert_report_bit_exact(&plain, &probed);
        // The streams advanced identically too: the next draw matches.
        assert_eq!(
            rng_plain.sample(1.0).to_bits(),
            rng_probed.sample(1.0).to_bits(),
            "probe perturbed the RNG stream of policy {name}"
        );
        #[cfg(feature = "telemetry")]
        {
            let metrics = probe.take_metrics().expect("telemetry on: metrics exist");
            assert!(
                metrics.counter("slots_fired") > 0,
                "policy {name} recorded no slots"
            );
            let trace = probe
                .trace
                .take()
                .expect("tracing was requested")
                .into_buffer();
            assert!(!trace.is_empty(), "policy {name} recorded no trace");
        }
    }
}

/// The engine's queue-depth histograms are lossless even when the bounded
/// trace ring overflows. The retired implementation reconstructed the
/// histogram from the ring's `Event` records, so once the ring evicted its
/// oldest records the histogram silently truncated; depths are now tallied
/// at dispatch inside the engine. A 4-record ring and an effectively
/// unbounded one must therefore report identical histograms — while the
/// small ring demonstrably dropped records.
#[cfg(feature = "telemetry")]
#[test]
fn queue_depth_histograms_survive_trace_ring_eviction() {
    let n = network();
    let payload = vec![0x42u8; 16];
    let plan = plan_for(&n, 4, &payload);
    let run = |capacity: usize| {
        let mut rng = trial_rng(0xD0_0D, 0);
        let mut probe = CampaignProbe::with_trace(capacity);
        n.run_mac_probed(
            milback_bench::experiments::mac_policy_by_name("aloha", 9).unwrap(),
            6,
            &payload,
            &plan,
            20.0,
            &mut rng,
            &mut probe,
        )
        .unwrap();
        let metrics = probe.take_metrics().expect("telemetry on: metrics exist");
        let dropped = probe.trace.take().unwrap().into_buffer().dropped();
        (metrics, dropped)
    };
    let (small, small_dropped) = run(4);
    let (big, big_dropped) = run(1 << 20);
    assert!(small_dropped > 0, "a 4-record ring must evict");
    assert_eq!(big_dropped, 0, "the large ring must hold everything");
    for name in [
        "queue_depth",
        "queue_depth_frame_start",
        "queue_depth_slot_fire",
        "queue_depth_stage_capture",
        "queue_depth_stage_plan",
        "queue_depth_stage_transmit",
    ] {
        let h_small = small
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram {name} missing from the small-ring run"));
        let h_big = big.histogram(name).expect("histogram in large-ring run");
        assert_eq!(h_small, h_big, "{name} truncated under ring eviction");
        assert!(h_small.count > 0, "{name} tallied nothing");
    }
    // The combined histogram saw more dispatches than the small ring could
    // ever hold — exactly the case the reconstruction used to truncate.
    assert!(small.histogram("queue_depth").unwrap().count > 4);
}

/// The instrumented sweep is bit-identical to the plain sweep, cell by
/// cell, for the full policy × node-count grid at 1/2/4/8 threads — and
/// the merged per-policy registries are identical at every thread count
/// (the fold runs in deterministic trial order).
#[test]
fn instrumented_sweep_matches_plain_at_every_thread_count() {
    let node_counts = [1, 3, 5];
    let (frames, payload_bytes, slots, seed) = (4, 8, 4, 0x3AC);
    let plain_ref = extension_mac_compare(
        &MAC_POLICY_NAMES,
        &node_counts,
        frames,
        payload_bytes,
        slots,
        seed,
        &RunnerConfig::serial(),
    );
    assert_eq!(
        plain_ref.ok_count(),
        MAC_POLICY_NAMES.len() * node_counts.len(),
        "every cell must simulate"
    );
    let mut merged_json: Option<Vec<String>> = None;
    for threads in [1, 2, 4, 8] {
        let inst = extension_mac_compare_instrumented(
            &MAC_POLICY_NAMES,
            &node_counts,
            frames,
            payload_bytes,
            slots,
            seed,
            &RunnerConfig::with_threads(threads),
            Some(4096),
        );
        assert_eq!(inst.batch.results.len(), plain_ref.results.len());
        for (p, q) in plain_ref.oks().zip(inst.batch.oks()) {
            assert_point_bit_exact(p, q);
        }
        // The serialized registries are schedule-invariant too.
        let jsons: Vec<String> = inst.policies.iter().map(|p| p.metrics.to_json()).collect();
        match &merged_json {
            None => merged_json = Some(jsons),
            Some(reference) => assert_eq!(
                reference, &jsons,
                "merged metrics changed at {threads} threads"
            ),
        }
    }
}

fn session_scene() -> (SystemConfig, Scene) {
    (
        SystemConfig::milback_default(),
        Scene::single_node(2.0, 12f64.to_radians()),
    )
}

fn assert_session_bit_exact(a: &SessionReport, b: &SessionReport) {
    assert_eq!(a, b);
    assert_eq!(a.ber.to_bits(), b.ber.to_bits());
    assert_eq!(a.airtime_s.to_bits(), b.airtime_s.to_bits());
    assert_eq!(a.node_energy_j.to_bits(), b.node_energy_j.to_bits());
}

/// `run_packet` vs `run_packet_probed` on shared streams: the session
/// layer's probe (event counters, energy histogram, optional trace) is
/// non-perturbing as well.
#[test]
fn probed_session_is_bit_identical() {
    let (config, scene) = session_scene();
    let session = Session::new(config, scene).unwrap();
    let packet = Packet::uplink(vec![0xA5u8; 24]);
    for trial in 0..3 {
        let mut rng_plain = trial_rng(0x5E55, trial);
        let mut rng_probed = trial_rng(0x5E55, trial);
        let plain = session.run_packet(&packet, &mut rng_plain).unwrap();
        let mut probe = CampaignProbe::with_trace(1024);
        let probed = session
            .run_packet_probed(&packet, &mut rng_probed, &mut probe)
            .unwrap();
        assert_session_bit_exact(&plain, &probed);
        assert_eq!(
            rng_plain.sample(1.0).to_bits(),
            rng_probed.sample(1.0).to_bits(),
            "session probe perturbed the RNG stream"
        );
        #[cfg(feature = "telemetry")]
        {
            let metrics = probe.take_metrics().expect("telemetry on: metrics exist");
            assert!(metrics.counter("session_events") > 0);
            let trace = probe
                .trace
                .take()
                .expect("tracing was requested")
                .into_buffer();
            assert!(!trace.is_empty(), "session recorded no trace events");
        }
    }
}
