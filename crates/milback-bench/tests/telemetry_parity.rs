//! Non-perturbation suite for the telemetry layer: attaching probes,
//! metrics registries, or trace sinks must never change a simulation
//! result. Every test here drives the instrumented and uninstrumented
//! paths on identical trial streams and demands bit-for-bit equality —
//! `==` plus `to_bits` on every float — through the trial-parallel runner
//! at `MILBACK_THREADS` 1/2/4/8, for all four MAC policies.
//!
//! The suite also passes with `--no-default-features` (telemetry compiled
//! out): the probed entry points still exist, the probes are inert, and
//! the parity half of every assertion is feature-independent.

use milback_bench::experiments::{
    extension_mac_compare, extension_mac_compare_instrumented, extension_net_audit,
    net_audit_sharded_lifecycle, MacComparePoint, MAC_POLICY_NAMES,
};
use milback_bench::runner::{trial_rng, RunnerConfig};
use milback_core::protocol::SlotPlan;
use milback_core::{
    CampaignProbe, DropReason, LifecycleStats, Network, Packet, Scene, Session, SessionReport,
    SlottedRunReport, SystemConfig,
};
use proptest::prelude::*;

fn network() -> Network {
    let scene = Scene::single_node(4.0, 12f64.to_radians())
        .with_node_at(4.5, 35f64.to_radians(), 12f64.to_radians())
        .with_node_at(3.5, -30f64.to_radians(), 12f64.to_radians());
    Network::new(SystemConfig::milback_default(), scene).unwrap()
}

fn plan_for(n: &Network, slots: usize, payload: &[u8]) -> SlotPlan {
    let packet = Packet::uplink(payload.to_vec());
    SlotPlan::for_packet(
        slots,
        &packet,
        &n.config.fmcw,
        n.config.uplink_symbol_rate_hz,
        10e-6,
    )
    .unwrap()
}

/// Float-bit equality across two campaign reports — stricter than
/// `PartialEq`, catches -0.0/rounding drift that `==` would forgive.
fn assert_report_bit_exact(a: &SlottedRunReport, b: &SlottedRunReport) {
    assert_eq!(a, b);
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(na.energy_j.to_bits(), nb.energy_j.to_bits());
        assert_eq!(
            na.mean_snr_db.map(f64::to_bits),
            nb.mean_snr_db.map(f64::to_bits)
        );
    }
}

/// Float-bit equality across two sweep cells.
fn assert_point_bit_exact(a: &MacComparePoint, b: &MacComparePoint) {
    assert_eq!(a, b);
    assert_eq!(a.delivery_rate.to_bits(), b.delivery_rate.to_bits());
    assert_eq!(
        a.per_node_goodput_bps.to_bits(),
        b.per_node_goodput_bps.to_bits()
    );
    assert_eq!(
        a.energy_per_packet_j.map(f64::to_bits),
        b.energy_per_packet_j.map(f64::to_bits)
    );
}

/// `run_mac` vs `run_mac_probed` (metrics + full trace) on shared trial
/// streams, for every MAC policy: bit-identical reports, and the RNG
/// streams advanced identically (the probe drew nothing).
#[test]
fn probed_campaign_is_bit_identical_for_every_policy() {
    let n = network();
    let payload = vec![0x42u8; 16];
    let plan = plan_for(&n, 4, &payload);
    for (k, &name) in MAC_POLICY_NAMES.iter().enumerate() {
        let mut rng_plain = trial_rng(0x7E1E, k);
        let mut rng_probed = trial_rng(0x7E1E, k);
        let plain = n
            .run_mac(
                milback_bench::experiments::mac_policy_by_name(name, 9).unwrap(),
                6,
                &payload,
                &plan,
                20.0,
                &mut rng_plain,
            )
            .unwrap();
        let mut probe = CampaignProbe::with_trace(4096);
        let probed = n
            .run_mac_probed(
                milback_bench::experiments::mac_policy_by_name(name, 9).unwrap(),
                6,
                &payload,
                &plan,
                20.0,
                &mut rng_probed,
                &mut probe,
            )
            .unwrap();
        assert_report_bit_exact(&plain, &probed);
        // The streams advanced identically too: the next draw matches.
        assert_eq!(
            rng_plain.sample(1.0).to_bits(),
            rng_probed.sample(1.0).to_bits(),
            "probe perturbed the RNG stream of policy {name}"
        );
        #[cfg(feature = "telemetry")]
        {
            let metrics = probe.take_metrics().expect("telemetry on: metrics exist");
            assert!(
                metrics.counter("slots_fired") > 0,
                "policy {name} recorded no slots"
            );
            let trace = probe
                .trace
                .take()
                .expect("tracing was requested")
                .into_buffer();
            assert!(!trace.is_empty(), "policy {name} recorded no trace");
        }
    }
}

/// The engine's queue-depth histograms are lossless even when the bounded
/// trace ring overflows. The retired implementation reconstructed the
/// histogram from the ring's `Event` records, so once the ring evicted its
/// oldest records the histogram silently truncated; depths are now tallied
/// at dispatch inside the engine. A 4-record ring and an effectively
/// unbounded one must therefore report identical histograms — while the
/// small ring demonstrably dropped records.
#[cfg(feature = "telemetry")]
#[test]
fn queue_depth_histograms_survive_trace_ring_eviction() {
    let n = network();
    let payload = vec![0x42u8; 16];
    let plan = plan_for(&n, 4, &payload);
    let run = |capacity: usize| {
        let mut rng = trial_rng(0xD0_0D, 0);
        let mut probe = CampaignProbe::with_trace(capacity);
        n.run_mac_probed(
            milback_bench::experiments::mac_policy_by_name("aloha", 9).unwrap(),
            6,
            &payload,
            &plan,
            20.0,
            &mut rng,
            &mut probe,
        )
        .unwrap();
        let metrics = probe.take_metrics().expect("telemetry on: metrics exist");
        let dropped = probe.trace.take().unwrap().into_buffer().dropped();
        (metrics, dropped)
    };
    let (small, small_dropped) = run(4);
    let (big, big_dropped) = run(1 << 20);
    assert!(small_dropped > 0, "a 4-record ring must evict");
    assert_eq!(big_dropped, 0, "the large ring must hold everything");
    for name in [
        "queue_depth",
        "queue_depth_frame_start",
        "queue_depth_slot_fire",
        "queue_depth_stage_capture",
        "queue_depth_stage_plan",
        "queue_depth_stage_transmit",
    ] {
        let h_small = small
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram {name} missing from the small-ring run"));
        let h_big = big.histogram(name).expect("histogram in large-ring run");
        assert_eq!(h_small, h_big, "{name} truncated under ring eviction");
        assert!(h_small.count > 0, "{name} tallied nothing");
    }
    // The combined histogram saw more dispatches than the small ring could
    // ever hold — exactly the case the reconstruction used to truncate.
    assert!(small.histogram("queue_depth").unwrap().count > 4);
}

/// The instrumented sweep is bit-identical to the plain sweep, cell by
/// cell, for the full policy × node-count grid at 1/2/4/8 threads — and
/// the merged per-policy registries are identical at every thread count
/// (the fold runs in deterministic trial order).
#[test]
fn instrumented_sweep_matches_plain_at_every_thread_count() {
    let node_counts = [1, 3, 5];
    let (frames, payload_bytes, slots, seed) = (4, 8, 4, 0x3AC);
    let plain_ref = extension_mac_compare(
        &MAC_POLICY_NAMES,
        &node_counts,
        frames,
        payload_bytes,
        slots,
        seed,
        &RunnerConfig::serial(),
    );
    assert_eq!(
        plain_ref.ok_count(),
        MAC_POLICY_NAMES.len() * node_counts.len(),
        "every cell must simulate"
    );
    let mut merged_json: Option<Vec<String>> = None;
    for threads in [1, 2, 4, 8] {
        let inst = extension_mac_compare_instrumented(
            &MAC_POLICY_NAMES,
            &node_counts,
            frames,
            payload_bytes,
            slots,
            seed,
            &RunnerConfig::with_threads(threads),
            Some(4096),
        );
        assert_eq!(inst.batch.results.len(), plain_ref.results.len());
        for (p, q) in plain_ref.oks().zip(inst.batch.oks()) {
            assert_point_bit_exact(p, q);
        }
        // The serialized registries are schedule-invariant too.
        let jsons: Vec<String> = inst.policies.iter().map(|p| p.metrics.to_json()).collect();
        match &merged_json {
            None => merged_json = Some(jsons),
            Some(reference) => assert_eq!(
                reference, &jsons,
                "merged metrics changed at {threads} threads"
            ),
        }
    }
}

/// Lifecycle-probed campaigns are the plain campaigns: the audit sweep —
/// which records every offer, drop, and latency observation — returns
/// bit-identical cells at 1/2/4/8 threads, every cell's ledger conserves
/// (a violation fails the cell), and attaching a full trace probe to the
/// same campaign leaves the report `==`/`to_bits` identical, lifecycle
/// ledger included.
#[test]
fn lifecycle_recording_is_non_perturbing_at_every_thread_count() {
    let mut reference = None;
    for threads in [1, 2, 4, 8] {
        let batch = extension_net_audit(
            &MAC_POLICY_NAMES,
            12,
            5,
            8,
            4,
            0x11FE,
            &RunnerConfig::with_threads(threads),
        );
        assert_eq!(
            batch.ok_count(),
            MAC_POLICY_NAMES.len() * 2,
            "a cell failed (conservation or simulation) at {threads} threads"
        );
        match &reference {
            None => reference = Some(batch.results),
            Some(r) => assert_eq!(r, &batch.results, "sweep changed at {threads} threads"),
        }
    }

    // Plain vs trace-probed single campaign: the lifecycle ledger rides in
    // the report and must be byte-identical on both sides.
    let n = network();
    let payload = vec![0x42u8; 16];
    let plan = plan_for(&n, 4, &payload);
    for (k, &name) in MAC_POLICY_NAMES.iter().enumerate() {
        let mut rng_plain = trial_rng(0x11FE, k);
        let mut rng_probed = trial_rng(0x11FE, k);
        let plain = n
            .run_mac(
                milback_bench::experiments::mac_policy_by_name(name, 9).unwrap(),
                6,
                &payload,
                &plan,
                20.0,
                &mut rng_plain,
            )
            .unwrap();
        let mut probe = CampaignProbe::with_trace(4096);
        let probed = n
            .run_mac_probed(
                milback_bench::experiments::mac_policy_by_name(name, 9).unwrap(),
                6,
                &payload,
                &plan,
                20.0,
                &mut rng_probed,
                &mut probe,
            )
            .unwrap();
        assert_eq!(plain.lifecycle, probed.lifecycle, "policy {name}");
        plain.lifecycle.audit().expect("plain ledger conserves");
        for (a, b) in [
            (
                &plain.lifecycle.slot_wait_us,
                &probed.lifecycle.slot_wait_us,
            ),
            (
                &plain.lifecycle.service_residence_us,
                &probed.lifecycle.service_residence_us,
            ),
            (
                &plain.lifecycle.relay_extra_us,
                &probed.lifecycle.relay_extra_us,
            ),
        ] {
            assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "policy {name}");
        }
        #[cfg(feature = "telemetry")]
        assert!(plain.lifecycle.offered > 0, "policy {name} offered nothing");
    }
}

/// The sharded city path's merged lifecycle ledger — counters and latency
/// sketches — is bit-identical at `MILBACK_THREADS` 1/2/4/8.
#[test]
fn sharded_lifecycle_sketches_are_thread_invariant() {
    let run = |threads| net_audit_sharded_lifecycle(24, 4, threads, 4, 8, 6, 0x11FE).unwrap();
    let reference = run(1);
    reference.audit().expect("the merged ledger conserves");
    for threads in [2, 4, 8] {
        let l = run(threads);
        assert_eq!(reference, l, "lifecycle changed at {threads} threads");
        assert_eq!(
            reference.slot_wait_us.sum.to_bits(),
            l.slot_wait_us.sum.to_bits()
        );
        assert_eq!(
            reference.service_residence_us.sum.to_bits(),
            l.service_residence_us.sum.to_bits()
        );
        assert_eq!(
            reference.relay_extra_us.sum.to_bits(),
            l.relay_extra_us.sum.to_bits()
        );
    }
}

/// Decodes one packet outcome from two bytes of entropy: deliveries
/// (direct or relayed) or one of the seven drop reasons, weighted so every
/// family appears routinely.
fn apply_outcome(stats: &mut LifecycleStats, bits: u16) -> (u64, u64) {
    use milback_core::{OverflowPolicy, StageKind};
    stats.offer(1);
    match bits % 9 {
        0 | 1 => {
            stats.deliver_direct(1);
            (1, 0)
        }
        2 => {
            stats.deliver_relayed(1);
            (1, 0)
        }
        3 => {
            stats.record_drops(DropReason::ContentionCollision, 1);
            (0, 1)
        }
        4 => {
            stats.record_drops(DropReason::SdmInseparable, 1);
            (0, 1)
        }
        5 => {
            let stage = match (bits >> 4) % 3 {
                0 => StageKind::Capture,
                1 => StageKind::Plan,
                _ => StageKind::Transmit,
            };
            stats.record_drops(
                DropReason::ServiceShed {
                    stage,
                    policy: OverflowPolicy::Drop,
                },
                1,
            );
            (0, 1)
        }
        6 => {
            stats.record_drops(DropReason::NoRelayRoute, 1);
            (0, 1)
        }
        7 => {
            stats.record_drops(DropReason::HopBudgetExhausted, 1);
            (0, 1)
        }
        _ => {
            stats.record_drops(
                if (bits >> 4) & 1 == 0 {
                    DropReason::DecodeFailure
                } else {
                    DropReason::NeverScheduled
                },
                1,
            );
            (0, 1)
        }
    }
}

proptest! {
    /// The drop reasons partition the offered packets: any sequence of
    /// per-packet outcomes — each offered packet resolving to exactly one
    /// delivery or drop — keeps the ledger conserving (`offered ==
    /// delivered + Σ drops`), the audit passing, and merges of arbitrary
    /// splits agreeing with the whole. With telemetry on, one extra
    /// unresolved offer must break the audit (the taxonomy has no
    /// "pending" bucket to leak into).
    #[test]
    fn drop_reasons_partition_offered_packets(
        outcomes in proptest::collection::vec(any::<u16>(), 0..256),
        split in any::<u16>(),
    ) {
        let mut whole = LifecycleStats::new();
        let (mut delivered, mut dropped) = (0u64, 0u64);
        for &bits in &outcomes {
            let (d, x) = apply_outcome(&mut whole, bits);
            delivered += d;
            dropped += x;
        }
        whole.audit().expect("a fully resolved ledger conserves");
        #[cfg(feature = "telemetry")]
        {
            prop_assert_eq!(whole.offered, outcomes.len() as u64);
            prop_assert_eq!(whole.delivered(), delivered);
            prop_assert_eq!(whole.dropped(), dropped);
            prop_assert_eq!(whole.offered, whole.delivered() + whole.dropped());
            prop_assert_eq!(
                whole.shed_by_stage.iter().sum::<u64>(),
                whole.drops[DropReason::ServiceShed {
                    stage: milback_core::StageKind::Capture,
                    policy: milback_core::OverflowPolicy::Drop,
                }.index()]
            );
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (delivered, dropped);
            prop_assert_eq!(whole.offered, 0);
        }

        // Partition the outcome stream and merge: same ledger.
        let cut = split as usize % (outcomes.len() + 1);
        let mut left = LifecycleStats::new();
        let mut right = LifecycleStats::new();
        for &bits in &outcomes[..cut] {
            apply_outcome(&mut left, bits);
        }
        for &bits in &outcomes[cut..] {
            apply_outcome(&mut right, bits);
        }
        left.merge_from(&right);
        prop_assert_eq!(&left, &whole);
        left.audit().expect("merged ledgers conserve");

        // A leak — one offer with no terminal outcome — must be caught.
        #[cfg(feature = "telemetry")]
        {
            whole.offer(1);
            prop_assert!(whole.audit().is_err(), "an unresolved offer must fail the audit");
        }
    }
}

fn session_scene() -> (SystemConfig, Scene) {
    (
        SystemConfig::milback_default(),
        Scene::single_node(2.0, 12f64.to_radians()),
    )
}

fn assert_session_bit_exact(a: &SessionReport, b: &SessionReport) {
    assert_eq!(a, b);
    assert_eq!(a.ber.to_bits(), b.ber.to_bits());
    assert_eq!(a.airtime_s.to_bits(), b.airtime_s.to_bits());
    assert_eq!(a.node_energy_j.to_bits(), b.node_energy_j.to_bits());
}

/// `run_packet` vs `run_packet_probed` on shared streams: the session
/// layer's probe (event counters, energy histogram, optional trace) is
/// non-perturbing as well.
#[test]
fn probed_session_is_bit_identical() {
    let (config, scene) = session_scene();
    let session = Session::new(config, scene).unwrap();
    let packet = Packet::uplink(vec![0xA5u8; 24]);
    for trial in 0..3 {
        let mut rng_plain = trial_rng(0x5E55, trial);
        let mut rng_probed = trial_rng(0x5E55, trial);
        let plain = session.run_packet(&packet, &mut rng_plain).unwrap();
        let mut probe = CampaignProbe::with_trace(1024);
        let probed = session
            .run_packet_probed(&packet, &mut rng_probed, &mut probe)
            .unwrap();
        assert_session_bit_exact(&plain, &probed);
        assert_eq!(
            rng_plain.sample(1.0).to_bits(),
            rng_probed.sample(1.0).to_bits(),
            "session probe perturbed the RNG stream"
        );
        #[cfg(feature = "telemetry")]
        {
            let metrics = probe.take_metrics().expect("telemetry on: metrics exist");
            assert!(metrics.counter("session_events") > 0);
            let trace = probe
                .trace
                .take()
                .expect("tracing was requested")
                .into_buffer();
            assert!(!trace.is_empty(), "session recorded no trace events");
        }
    }
}
