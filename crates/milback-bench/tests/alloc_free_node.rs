//! Proof that the node firmware's packet hot path performs **zero heap
//! allocations**: a counting global allocator wraps the system allocator
//! and the test asserts the counter does not move across full firmware
//! packet walks.
//!
//! This is an integration test (its own crate) so the counting allocator
//! — which needs `unsafe impl GlobalAlloc` — stays out of the
//! `#![forbid(unsafe_code)]` library crates. Together with the
//! `--no-default-features` (`no_std`) build of `milback-node` in CI, it
//! pins the "allocation-free node core" property the batching PR
//! established: an MCU port of `firmware`/`mode`/`power` needs no heap at
//! all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use milback_node::firmware::{Direction, Event, Firmware, State};
use milback_node::power::NodePowerModel;
use milback_node::{PortMode, ToggleSchedule};

/// System allocator with an allocation counter. Deallocations and
/// reallocations are counted too — the hot path must not touch the heap
/// in any way.
struct CountingAlloc;

static ALLOC_OPS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter is a
// relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap operations it performed.
fn alloc_ops_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_OPS.load(Ordering::Relaxed);
    let out = f();
    let after = ALLOC_OPS.load(Ordering::Relaxed);
    (after - before, out)
}

/// Drives one full packet through the firmware state machine with dwell
/// ticks — the MCU main-loop body.
fn walk_packet(fw: &mut Firmware, direction: Direction) {
    let bursts = match direction {
        Direction::Uplink => 3,
        Direction::Downlink => 2,
    };
    for _ in 0..bursts {
        fw.step(Event::BurstStart, 45e-6).unwrap();
    }
    fw.step(Event::Field1GapTimeout, 20e-6).unwrap();
    fw.step(Event::BurstStart, 500e-6).unwrap(); // Field 2 begins
    fw.step(Event::Field2Complete, 2e-3).unwrap();
    fw.step(Event::PayloadComplete, 1e-6).unwrap();
    assert_eq!(fw.state(), State::PacketDone);
    fw.step(Event::Reset, 1e-6).unwrap();
    assert_eq!(fw.state(), State::Idle);
}

#[test]
fn firmware_packet_walk_is_allocation_free() {
    // Construct outside the measured window (construction may allocate;
    // the steady-state loop must not).
    let mut fw = Firmware::new(NodePowerModel::milback_default());
    // Warm up once so any lazy one-time setup is out of the way.
    walk_packet(&mut fw, Direction::Downlink);

    let (ops, ()) = alloc_ops_during(|| {
        for k in 0..100 {
            let dir = if k % 2 == 0 {
                Direction::Downlink
            } else {
                Direction::Uplink
            };
            walk_packet(&mut fw, dir);
        }
    });
    assert_eq!(ops, 0, "firmware step path touched the heap {ops} times");
    // The ledger really ran: energy accumulated across the packets.
    assert!(fw.energy_j() > 0.0);
    assert_eq!(fw.packet_counts().0 + fw.packet_counts().1, 101);
}

#[test]
fn rejected_transitions_are_allocation_free_too() {
    let mut fw = Firmware::new(NodePowerModel::milback_default());
    let (ops, err) = alloc_ops_during(|| fw.step(Event::PayloadComplete, 1e-6).unwrap_err());
    assert_eq!(ops, 0, "the error path must not allocate (it is `Copy`)");
    assert_eq!(err.event, Event::PayloadComplete);
}

#[test]
fn switch_count_is_allocation_free_and_presizes_exactly() {
    let t = ToggleSchedule {
        rate_hz: 10e3,
        initial: PortMode::Reflective,
    };
    let (ops, count) = alloc_ops_during(|| t.switch_count(0.0, 5e-3));
    assert_eq!(ops, 0, "the count-only schedule variant must not allocate");
    // And the enumeration allocates exactly once, at the right capacity.
    let (ops, times) = alloc_ops_during(|| t.switch_times_s(0.0, 5e-3));
    assert_eq!(times.len(), count);
    assert_eq!(times.capacity(), count);
    assert!(
        ops <= 1,
        "pre-sized enumeration should allocate at most once, did {ops} ops"
    );
}
