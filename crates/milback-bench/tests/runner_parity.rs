//! Determinism guarantee of the trial-parallel runner: results are
//! bit-for-bit identical at every thread count (what `MILBACK_THREADS`
//! resolves to at run time) and identical to an explicit serial loop.

use milback_bench::experiments::{self, OrientSide};
use milback_bench::runner::{run_fallible, run_trials, trial_rng, RunnerConfig};
use mmwave_sigproc::random::GaussianSource;

/// Bit-level equality for Gaussian sums: any reordering or stream reuse
/// across trials would flip low-order mantissa bits.
#[test]
fn gaussian_trials_bit_identical_across_thread_counts() {
    let trial = |i: usize, rng: &mut GaussianSource| -> Vec<u64> {
        (0..40 + i % 7).map(|_| rng.standard().to_bits()).collect()
    };
    let reference: Vec<Vec<u64>> = (0..31)
        .map(|i| {
            let mut rng = trial_rng(0xDEAD_BEEF, i);
            trial(i, &mut rng)
        })
        .collect();
    for threads in [1, 2, 4, 8] {
        let got = run_trials(31, 0xDEAD_BEEF, &RunnerConfig::with_threads(threads), trial);
        assert_eq!(got, reference, "runner output changed at {threads} threads");
    }
}

/// The same guarantee through a full experiment core: a five-chirp
/// localization per trial, with capture noise, impairment draws, and the
/// FSA gain-evaluator caches all in play.
#[test]
fn localization_experiment_bit_identical_across_thread_counts() {
    let placements = [(8.0, 2.0)];
    let reference =
        experiments::fig12b_angle_errors(&placements, 2, 0xF12B, &RunnerConfig::with_threads(1));
    assert_eq!(
        reference.iter().map(|r| r.errors_deg.len()).sum::<usize>() + reference[0].failed,
        2
    );
    for threads in [2, 4, 8] {
        let got = experiments::fig12b_angle_errors(
            &placements,
            2,
            0xF12B,
            &RunnerConfig::with_threads(threads),
        );
        assert_eq!(
            got, reference,
            "experiment output changed at {threads} threads"
        );
    }
}

/// Orientation estimation side-by-side: both sides of Figure 13 stay
/// schedule-invariant.
#[test]
fn orientation_experiment_bit_identical_across_thread_counts() {
    for side in [OrientSide::Node, OrientSide::Ap] {
        let reference =
            experiments::fig13_orientation(&[5.0], 2, 0xF13A, &RunnerConfig::serial(), side);
        for threads in [2, 8] {
            let got = experiments::fig13_orientation(
                &[5.0],
                2,
                0xF13A,
                &RunnerConfig::with_threads(threads),
                side,
            );
            assert_eq!(
                got, reference,
                "{side:?} output changed at {threads} threads"
            );
        }
    }
}

/// Fallible batches preserve per-trial error placement under parallelism.
#[test]
fn fallible_batch_error_slots_are_schedule_invariant() {
    let trial = |i: usize, rng: &mut GaussianSource| -> Result<u64, String> {
        let x = rng.standard();
        if i % 5 == 3 {
            Err(format!("trial {i} rejected ({x:.3})"))
        } else {
            Ok(x.to_bits())
        }
    };
    let reference = run_fallible(26, 0x5EED, &RunnerConfig::serial(), trial);
    for threads in [2, 4, 8] {
        let got = run_fallible(26, 0x5EED, &RunnerConfig::with_threads(threads), trial);
        assert_eq!(got, reference);
    }
    assert_eq!(reference.failed_count(), 5);
}
