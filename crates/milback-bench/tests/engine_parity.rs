//! Parity suite for the discrete-event engine re-layering: the engine
//! paths ([`Session::run_packet`], [`Network::uplink_round`]) must stay
//! bit-identical to the retained pre-refactor implementations
//! (`run_packet_direct`, `uplink_round_direct`) for fixed seeds — and that
//! equality must survive the trial-parallel runner at every thread count,
//! because the engine shares the per-trial RNG streams with everything
//! else a trial does.

use milback_bench::runner::{run_trials, trial_rng, RunnerConfig};
use milback_core::{Network, Packet, Scene, Session, SessionReport, SystemConfig};
use mmwave_sigproc::random::GaussianSource;

fn session() -> Session {
    Session::new(
        SystemConfig::milback_default(),
        Scene::indoor(4.0, 12f64.to_radians()),
    )
    .unwrap()
}

fn network() -> Network {
    let scene = Scene::single_node(4.0, 12f64.to_radians())
        .with_node_at(4.5, 35f64.to_radians(), 12f64.to_radians())
        .with_node_at(3.5, -30f64.to_radians(), 12f64.to_radians());
    Network::new(SystemConfig::milback_default(), scene).unwrap()
}

/// The per-trial packet grid: direction and payload vary by trial index so
/// the suite covers downlink, uplink, and the empty-payload edge.
fn packet_for(trial: usize) -> Packet {
    match trial % 4 {
        0 => Packet::downlink(vec![0xA5; 12]),
        1 => Packet::uplink(vec![0x42; 16]),
        2 => Packet::downlink(Vec::new()),
        _ => Packet::uplink((0..24).collect::<Vec<u8>>()),
    }
}

/// Engine sessions reproduce the direct implementation bit-for-bit on the
/// same RNG stream, trial by trial.
#[test]
fn session_engine_matches_direct_per_trial() {
    let s = session();
    for trial in 0..4 {
        let packet = packet_for(trial);
        let mut rng_e = trial_rng(0x5E55, trial);
        let mut rng_d = trial_rng(0x5E55, trial);
        let engine = s.run_packet(&packet, &mut rng_e).unwrap();
        let direct = s.run_packet_direct(&packet, &mut rng_d).unwrap();
        assert_eq!(engine, direct, "trial {trial} diverged");
        assert_eq!(
            engine.node_energy_j.to_bits(),
            direct.node_energy_j.to_bits(),
            "trial {trial} energy bits diverged"
        );
        // The streams must have advanced identically too.
        assert_eq!(rng_e.sample(1.0).to_bits(), rng_d.sample(1.0).to_bits());
    }
}

/// The engine session through the runner: reports are bit-identical at
/// thread counts 1, 2, 4, 8 (what `MILBACK_THREADS` resolves to), and each
/// equals the direct path on the same per-trial stream.
#[test]
fn session_reports_thread_count_invariant() {
    let run = |threads: usize, direct: bool| -> Vec<SessionReport> {
        run_trials(8, 0xE4E4, &RunnerConfig::with_threads(threads), |i, rng| {
            let s = session();
            let packet = packet_for(i);
            if direct {
                s.run_packet_direct(&packet, rng).unwrap()
            } else {
                s.run_packet(&packet, rng).unwrap()
            }
        })
    };
    let reference = run(1, false);
    assert_eq!(reference, run(1, true), "engine diverged from direct");
    for threads in [2, 4, 8] {
        assert_eq!(
            reference,
            run(threads, false),
            "engine path changed at {threads} threads"
        );
        assert_eq!(
            reference,
            run(threads, true),
            "direct path changed at {threads} threads"
        );
    }
}

/// Engine rounds reproduce the direct round bit-for-bit, through the
/// runner, at every thread count.
#[test]
fn network_rounds_thread_count_invariant() {
    let payloads: Vec<Vec<u8>> = vec![vec![1; 8], vec![2; 8], vec![3; 8]];
    let run = |threads: usize, direct: bool| {
        let payloads = payloads.clone();
        run_trials(
            6,
            0x4E7,
            &RunnerConfig::with_threads(threads),
            move |_, rng| {
                let n = network();
                if direct {
                    n.uplink_round_direct(&payloads, rng).unwrap()
                } else {
                    n.uplink_round(&payloads, rng).unwrap()
                }
            },
        )
    };
    let reference = run(1, false);
    assert_eq!(reference, run(1, true), "engine round diverged from direct");
    for threads in [2, 4, 8] {
        assert_eq!(
            reference,
            run(threads, false),
            "round changed at {threads} threads"
        );
    }
    // SNR bits, not just PartialEq: catches any -0.0/NaN-shape drift.
    let direct = run(1, true);
    for (t, (a, b)) in reference.iter().zip(&direct).enumerate() {
        for (ra, rb) in a.iter().zip(b) {
            assert_eq!(
                ra.outcome.snr_db.to_bits(),
                rb.outcome.snr_db.to_bits(),
                "trial {t} SNR bits diverged"
            );
        }
    }
}

/// The slotted campaign (engine-only — it has no direct twin) is itself
/// schedule-invariant: same seed, same report, at any thread count.
#[test]
fn slotted_campaign_thread_count_invariant() {
    use milback_core::protocol::SlotPlan;
    let run = |threads: usize| {
        run_trials(4, 0x5107, &RunnerConfig::with_threads(threads), |i, rng| {
            let n = network();
            let payload = vec![0x42; 16];
            let packet = Packet::uplink(payload.clone());
            let plan = SlotPlan::for_packet(
                4,
                &packet,
                &n.config.fmcw,
                n.config.uplink_symbol_rate_hz,
                10e-6,
            )
            .unwrap();
            n.run_slotted(4 + i, &payload, &plan, i as u64, 20.0, rng)
                .unwrap()
        })
    };
    let reference = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            reference,
            run(threads),
            "slotted run changed at {threads} threads"
        );
    }
}

/// A fresh `GaussianSource` behaves exactly like a runner stream with the
/// same seed — the engine never consults anything but the stream it is
/// handed.
#[test]
fn engine_uses_only_the_handed_stream() {
    let s = session();
    let packet = Packet::uplink(vec![9; 8]);
    let mut a = GaussianSource::new(0xFEED);
    let mut b = GaussianSource::new(0xFEED);
    let ra = s.run_packet(&packet, &mut a).unwrap();
    let rb = s.run_packet(&packet, &mut b).unwrap();
    assert_eq!(ra, rb);
    assert_eq!(a.sample(1.0).to_bits(), b.sample(1.0).to_bits());
}
