//! Campaign-metrics serialization: the `results/METRICS_mac.json`
//! artifact `mac_compare` writes and `net_scale` consumes.
//!
//! All JSON here is hand-rolled (the workspace's serde shim is a no-op
//! marker), with the same hygiene rules as the CSV anchors: no `NaN`/`inf`
//! token can ever appear (the telemetry layer filters non-finite values at
//! observation time), and reduced-mode runs write nothing so the artifact
//! always describes a full-scale campaign unless CI regenerates it
//! deliberately.

use crate::hostinfo::HostInfo;
use milback_core::telemetry::Metrics;
use milback_core::LifecycleStats;
use std::fmt::Write as _;

/// Schema tag of `results/METRICS_mac.json`.
pub const METRICS_MAC_SCHEMA: &str = "milback-metrics-mac-v1";

/// Schema tag of `results/METRICS_lifecycle.json`.
pub const METRICS_LIFECYCLE_SCHEMA: &str = "milback-metrics-lifecycle-v1";

// `fold_queue_depths` — the trace-ring reconstruction of the engine's
// queue-depth histogram — is gone: a bounded ring evicts its oldest
// records, so any histogram rebuilt from it silently truncated on long
// campaigns. The engine now tallies dispatch-time depths losslessly
// (`Engine::enable_depth_stats`) and the campaign runner folds them into
// the probe's metrics directly.

/// Renders the full `METRICS_mac.json` document: schema, host block,
/// campaign configuration, and one merged metrics registry per policy (in
/// the given order, which the writer keeps deterministic).
pub fn metrics_mac_json(
    host: &HostInfo,
    config: &[(&str, String)],
    policies: &[(&str, &Metrics)],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{METRICS_MAC_SCHEMA}\",");
    let _ = writeln!(out, "  \"host\": {},", host.to_json());
    out.push_str("  \"config\": { ");
    for (i, (k, v)) in config.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{k}\": {v}");
    }
    out.push_str(" },\n  \"policies\": {\n");
    for (i, (name, metrics)) in policies.iter().enumerate() {
        let _ = write!(out, "    \"{name}\": {}", metrics.to_json());
        out.push_str(if i + 1 < policies.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Renders the full `METRICS_lifecycle.json` document: schema, host
/// block, campaign configuration, and one [`LifecycleStats::to_json`]
/// ledger per sweep cell (in the given order, which `net_audit` keeps
/// deterministic: policy-major, direct before relay). Every cell carries
/// all seven canonical drop labels even at zero, and percentile keys
/// appear only on non-empty sketches — the same hygiene contract as the
/// MAC document.
pub fn metrics_lifecycle_json(
    host: &HostInfo,
    config: &[(&str, String)],
    cells: &[(String, &LifecycleStats)],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{METRICS_LIFECYCLE_SCHEMA}\",");
    let _ = writeln!(out, "  \"host\": {},", host.to_json());
    out.push_str("  \"config\": { ");
    for (i, (k, v)) in config.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{k}\": {v}");
    }
    out.push_str(" },\n  \"cells\": {\n");
    for (i, (name, lifecycle)) in cells.iter().enumerate() {
        let _ = write!(out, "    \"{name}\": {}", lifecycle.to_json());
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Extracts one counter from a policy's section of a `METRICS_mac.json`
/// document. A substring reader over the writer's known layout — not a
/// JSON parser — which is all the cross-consumer (`net_scale`) needs
/// without a JSON dependency.
pub fn parse_policy_counter(text: &str, policy: &str, counter: &str) -> Option<u64> {
    let section_start = text.find(&format!("\"{policy}\": {{"))?;
    let section = &text[section_start..];
    // Sections are one line each; stay inside this policy's line.
    let section = section.lines().next()?;
    let key = format!("\"{counter}\":");
    let at = section.find(&key)? + key.len();
    let digits: String = section[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

// Every test here exercises the metrics document, so the whole module is
// telemetry-gated (a telemetry-off build has nothing to round-trip).
#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[cfg(feature = "telemetry")]
    fn host() -> HostInfo {
        HostInfo {
            cores: 4,
            threads: 2,
            rustc: "rustc 1.99.0 (test)".into(),
            features: vec!["telemetry"],
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn lifecycle_document_carries_every_label_and_round_trips() {
        use milback_core::DropReason;
        let mut direct = LifecycleStats::new();
        direct.offer(5);
        direct.deliver_direct(3);
        direct.record_drops(DropReason::SdmInseparable, 2);
        direct.observe_slot_wait_us(120.0, 3);
        let relayed = LifecycleStats::new();
        let doc = metrics_lifecycle_json(
            &host(),
            &[("nodes", "64".into()), ("frames", "24".into())],
            &[
                ("aloha/direct".into(), &direct),
                ("aloha/relay".into(), &relayed),
            ],
        );
        assert!(doc.contains(METRICS_LIFECYCLE_SCHEMA));
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
        for label in DropReason::LABELS {
            // Both cells carry the full drop table, even the empty one.
            assert_eq!(doc.matches(&format!("\"{label}\":")).count(), 2);
        }
        // The section reader works on lifecycle cells too.
        assert_eq!(
            parse_policy_counter(&doc, "aloha/direct", "offered"),
            Some(5)
        );
        assert_eq!(
            parse_policy_counter(&doc, "aloha/direct", "sdm_inseparable"),
            Some(2)
        );
        assert_eq!(
            parse_policy_counter(&doc, "aloha/relay", "offered"),
            Some(0)
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn document_round_trips_counters() {
        let mut aloha = Metrics::new();
        aloha.inc("slots_fired", 42);
        aloha.inc("slot_collisions", 7);
        let mut sdm = Metrics::new();
        sdm.inc("slots_fired", 42);
        sdm.inc("slot_collisions", 0);
        let doc = metrics_mac_json(
            &host(),
            &[("frames", "24".into()), ("slots", "8".into())],
            &[("aloha", &aloha), ("sdm", &sdm)],
        );
        assert!(doc.contains(METRICS_MAC_SCHEMA));
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
        assert_eq!(
            parse_policy_counter(&doc, "aloha", "slot_collisions"),
            Some(7)
        );
        assert_eq!(
            parse_policy_counter(&doc, "sdm", "slot_collisions"),
            Some(0)
        );
        assert_eq!(parse_policy_counter(&doc, "sdm", "slots_fired"), Some(42));
        assert_eq!(parse_policy_counter(&doc, "polling", "slots_fired"), None);
    }
}
