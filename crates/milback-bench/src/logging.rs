//! Leveled stderr logging for the experiment binaries.
//!
//! `MILBACK_LOG={off,warn,info,debug}` selects the threshold (default
//! `warn`, so CI and reduced runs stay quiet unless something is actually
//! wrong). The binaries log through [`log_warn!`](crate::log_warn) /
//! [`log_info!`](crate::log_info) / [`log_debug!`](crate::log_debug)
//! instead of scattered `eprintln!`, so one environment variable governs
//! all diagnostic output.

use std::sync::OnceLock;

/// Log severity, ordered: nothing below the configured level prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Log nothing.
    Off,
    /// Problems a run should surface even in CI (default).
    Warn,
    /// Progress and summary diagnostics.
    Info,
    /// Everything, including per-stage chatter.
    Debug,
}

impl Level {
    /// Parses a `MILBACK_LOG` value; unknown strings fall back to `Warn`
    /// (never panic over an env var typo).
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Level::Off,
            "info" => Level::Info,
            "debug" => Level::Debug,
            _ => Level::Warn,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// The configured threshold (reads `MILBACK_LOG` once per process).
pub fn level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        std::env::var("MILBACK_LOG")
            .map(|v| Level::parse(&v))
            .unwrap_or(Level::Warn)
    })
}

/// Logs `args` to stderr when `at` passes the configured threshold.
/// Prefer the [`log_warn!`](crate::log_warn)-family macros.
pub fn log(at: Level, args: std::fmt::Arguments<'_>) {
    if at != Level::Off && at <= level() {
        eprintln!("[{}] {args}", at.label());
    }
}

/// Logs at [`Level::Warn`] (printed unless `MILBACK_LOG=off`).
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        $crate::logging::log($crate::logging::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`] (printed at `MILBACK_LOG=info` or `debug`).
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        $crate::logging::log($crate::logging::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`] (printed only at `MILBACK_LOG=debug`).
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        $crate::logging::log($crate::logging::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_documented_value() {
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("0"), Level::Off);
        assert_eq!(Level::parse("warn"), Level::Warn);
        assert_eq!(Level::parse("INFO"), Level::Info);
        assert_eq!(Level::parse(" debug "), Level::Debug);
    }

    #[test]
    fn unknown_values_fall_back_to_warn() {
        assert_eq!(Level::parse("verbose"), Level::Warn);
        assert_eq!(Level::parse(""), Level::Warn);
    }

    #[test]
    fn levels_order_off_to_debug() {
        assert!(Level::Off < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
