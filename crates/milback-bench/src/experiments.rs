//! Parameterized experiment cores shared by the figure binaries and the
//! benchmark harness.
//!
//! Each core is a pure function of its grid, trial count, and root seed:
//! it flattens `points × trials` into one batch of independent Monte-Carlo
//! trials, runs them through [`crate::runner::run_trials`] (so trial `i`
//! always consumes the same RNG stream regardless of thread count or grid
//! shape), and regroups the per-trial outcomes by grid point. The figure
//! binaries call these at full scale to regenerate the CSV anchors;
//! `bench_smoke` calls them at reduced scale, serial vs parallel, to time
//! the runner and assert the two schedules agree bit-for-bit.
//!
//! Every simulator/pipeline built here uses `with_beat_threads(1)`: the
//! runner already parallelizes across trials, so the inner beat-synthesis
//! parallelism would only oversubscribe the machine.

use crate::runner::{run_fallible, run_fallible_with, trial_seed, RunnerConfig, TrialBatch};
use milback_ap::fmcw::FmcwScratch;
use milback_core::coding::{bits_to_bytes, bytes_to_bits, PayloadCodec};
use milback_core::engine::ps_to_secs;
use milback_core::localization::{Impairments, LocationFix};
use milback_core::protocol::SlotPlan;
use milback_core::telemetry::{CampaignProbe, Metrics, TraceBuffer};
use milback_core::{
    ApServiceConfig, BackoffAloha, CampaignAggregate, CoverageModel, LifecycleStats, LinkSimulator,
    LocalizationPipeline, MacPolicy, Network, OverflowPolicy, Packet, RelayAwareMac, RelayConfig,
    RoundRobinPolling, Scene, SdmAwareAssignment, SlottedAloha, SlottedRunReport, SystemConfig,
};
use mmwave_rf::channel::{ApFrontend, NodePose, Vec2};

/// The node orientation used by the ranging/link figures (the paper's
/// 12° placement).
fn node_orientation_rad() -> f64 {
    12f64.to_radians()
}

/// Splits a flattened `points × trials` result vector back into per-point
/// `(successes, failed_count)` groups, preserving trial order.
fn group_by_point<T: Clone, E>(trials: usize, results: &[Result<T, E>]) -> Vec<(Vec<T>, usize)> {
    results
        .chunks(trials)
        .map(|chunk| {
            let oks: Vec<T> = chunk
                .iter()
                .filter_map(|r| r.as_ref().ok().cloned())
                .collect();
            let failed = chunk.len() - oks.len();
            (oks, failed)
        })
        .collect()
}

/// Per-distance ranging outcomes (Figure 12a).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceErrors {
    /// AP–node distance, meters.
    pub distance_m: f64,
    /// Absolute range errors of the successful trials, meters.
    pub abs_errors_m: Vec<f64>,
    /// Number of trials whose localization failed.
    pub failed: usize,
}

/// Figure 12a core: five-chirp ranging at each distance in the cluttered
/// indoor scene, `trials` independent trials per distance, errors against
/// the laser-measured (noisy) ground truth.
pub fn fig12a_ranging(
    distances: &[f64],
    trials: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> Vec<DistanceErrors> {
    let pipelines: Vec<LocalizationPipeline> = distances
        .iter()
        .map(|&d| {
            LocalizationPipeline::new(
                SystemConfig::milback_default(),
                Scene::indoor(d, node_orientation_rad()),
            )
            .expect("valid configuration")
            .with_beat_threads(1)
        })
        .collect();
    // One FFT workspace per worker, reused across all of its trials (the
    // scratch-fed detector path is bit-identical to the allocating one).
    let batch = run_fallible_with(
        distances.len() * trials,
        root_seed,
        cfg,
        FmcwScratch::new,
        |scratch, i, rng| {
            let pipeline = &pipelines[i / trials];
            // The experimenter measures ground truth with a laser meter;
            // the estimate is compared against that measurement.
            let measured_gt = pipeline.measured_ground_truth_range(rng);
            pipeline
                .localize_with(rng, scratch)
                .map(|fix| (fix.range_m - measured_gt).abs())
                .map_err(|e| e.to_string())
        },
    );
    distances
        .iter()
        .zip(group_by_point(trials, &batch.results))
        .map(|(&d, (abs_errors_m, failed))| DistanceErrors {
            distance_m: d,
            abs_errors_m,
            failed,
        })
        .collect()
}

/// Per-placement angle-error outcomes (Figure 12b).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementErrors {
    /// True azimuth, degrees.
    pub azimuth_deg: f64,
    /// AP–node distance, meters.
    pub distance_m: f64,
    /// Absolute angle errors of the successful trials, degrees.
    pub errors_deg: Vec<f64>,
    /// Number of trials whose localization failed.
    pub failed: usize,
}

/// Figure 12b core: full localization at each `(azimuth°, distance)`
/// placement, comparing the estimated angle with the protractor truth.
pub fn fig12b_angle_errors(
    placements: &[(f64, f64)],
    trials: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> Vec<PlacementErrors> {
    let pipelines: Vec<LocalizationPipeline> = placements
        .iter()
        .map(|&(az_deg, dist)| {
            let scene = Scene {
                ap: ApFrontend::milback_default(),
                nodes: vec![],
                clutter: Scene::indoor(dist, 0.0).clutter,
            }
            .with_node_at(dist, az_deg.to_radians(), node_orientation_rad());
            LocalizationPipeline::new(SystemConfig::milback_default(), scene)
                .expect("valid configuration")
                .with_beat_threads(1)
        })
        .collect();
    let batch = run_fallible_with(
        placements.len() * trials,
        root_seed,
        cfg,
        FmcwScratch::new,
        |scratch, i, rng| {
            let (az_deg, _) = placements[i / trials];
            pipelines[i / trials]
                .localize_with(rng, scratch)
                .map(|fix| (fix.angle_rad.to_degrees() - az_deg).abs())
                .map_err(|e| e.to_string())
        },
    );
    placements
        .iter()
        .zip(group_by_point(trials, &batch.results))
        .map(|(&(az_deg, dist), (errors_deg, failed))| PlacementErrors {
            azimuth_deg: az_deg,
            distance_m: dist,
            errors_deg,
            failed,
        })
        .collect()
}

/// Which side estimates orientation in the Figure 13 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrientSide {
    /// Node-side estimation from the two detector traces (Fig 13a).
    Node,
    /// AP-side estimation from the modulated backscatter sweep (Fig 13b).
    Ap,
}

/// Per-orientation estimation outcomes (Figures 13a/13b).
#[derive(Debug, Clone, PartialEq)]
pub struct OrientationErrors {
    /// Board orientation, degrees.
    pub orientation_deg: f64,
    /// Absolute orientation errors of the successful trials, degrees.
    pub abs_errors_deg: Vec<f64>,
    /// Number of trials whose estimation failed.
    pub failed: usize,
}

/// Figure 13 core: orientation estimation at 2 m for each board
/// orientation, on the chosen side.
pub fn fig13_orientation(
    orientations_deg: &[f64],
    trials: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
    side: OrientSide,
) -> Vec<OrientationErrors> {
    // `orientation_rad` rotates the board; the sensed incidence is its
    // negative — sweep the board and compare in incidence space.
    let pipelines: Vec<LocalizationPipeline> = orientations_deg
        .iter()
        .map(|&deg| {
            LocalizationPipeline::new(
                SystemConfig::milback_default(),
                Scene::indoor(2.0, (-deg).to_radians()),
            )
            .expect("valid configuration")
            .with_beat_threads(1)
        })
        .collect();
    let truths_deg: Vec<f64> = pipelines
        .iter()
        .map(|p| p.scene.ground_truth(0).incidence_rad.to_degrees())
        .collect();
    let batch = run_fallible(orientations_deg.len() * trials, root_seed, cfg, |i, rng| {
        let k = i / trials;
        let est = match side {
            OrientSide::Node => pipelines[k].orient_at_node(rng),
            OrientSide::Ap => pipelines[k].orient_at_ap(rng),
        };
        est.map(|e| (e.to_degrees() - truths_deg[k]).abs())
            .map_err(|e| e.to_string())
    });
    orientations_deg
        .iter()
        .zip(group_by_point(trials, &batch.results))
        .map(|(&deg, (abs_errors_deg, failed))| OrientationErrors {
            orientation_deg: deg,
            abs_errors_deg,
            failed,
        })
        .collect()
}

/// One waveform-level downlink transfer (Figure 14 spot check).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotDownlink {
    /// AP–node distance, meters.
    pub distance_m: f64,
    /// Measured bit error rate of the delivered payload.
    pub ber: f64,
    /// Analytic SINR of the link, dB.
    pub sinr_db: f64,
}

/// Figure 14 core: deliver an actual payload at each distance (one trial
/// per distance, each with its own RNG stream for payload and noise).
pub fn fig14_spot_checks(
    distances: &[f64],
    payload_bytes: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> TrialBatch<SpotDownlink, String> {
    run_fallible(distances.len(), root_seed, cfg, |i, rng| {
        let d = distances[i];
        let sim = LinkSimulator::new(
            SystemConfig::milback_default(),
            Scene::single_node(d, node_orientation_rad()),
        )
        .map_err(|e| e.to_string())?;
        let payload: Vec<u8> = rng.bytes(payload_bytes);
        let out = sim.downlink(&payload, rng).map_err(|e| e.to_string())?;
        Ok(SpotDownlink {
            distance_m: d,
            ber: out.ber,
            sinr_db: out.sinr_db(),
        })
    })
}

/// One waveform-level uplink transfer (Figure 15 spot check).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotUplink {
    /// Uplink bit rate, bits/s.
    pub bit_rate_bps: f64,
    /// AP–node distance, meters.
    pub distance_m: f64,
    /// Measured SNR at the AP, dB.
    pub snr_db: f64,
    /// Measured bit error rate.
    pub ber: f64,
    /// The analytic SNR the link budget predicts, dB.
    pub analytic_snr_db: f64,
}

/// Figure 15 core: ship a payload over the backscatter uplink for each
/// `(bit rate, distance)` case.
pub fn fig15_spot_checks(
    cases: &[(f64, f64)],
    payload_bytes: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> TrialBatch<SpotUplink, String> {
    run_fallible(cases.len(), root_seed, cfg, |i, rng| {
        let (rate, d) = cases[i];
        let mut config = SystemConfig::milback_default();
        config.uplink_symbol_rate_hz = rate / 2.0;
        let sim = LinkSimulator::new(config, Scene::single_node(d, node_orientation_rad()))
            .map_err(|e| e.to_string())?;
        let payload: Vec<u8> = rng.bytes(payload_bytes);
        let out = sim.uplink(&payload, rng).map_err(|e| e.to_string())?;
        Ok(SpotUplink {
            bit_rate_bps: rate,
            distance_m: d,
            snr_db: out.snr_db,
            ber: out.ber,
            analytic_snr_db: out.analytic_snr_db,
        })
    })
}

/// Per-impairment-case ranging outcomes (Ablation A6).
#[derive(Debug, Clone, PartialEq)]
pub struct CaseErrors {
    /// Case id (the x coordinate of the ablation plot).
    pub case_id: f64,
    /// Absolute range errors of the successful trials, centimeters.
    pub abs_errors_cm: Vec<f64>,
    /// Number of trials whose localization failed.
    pub failed: usize,
}

/// Ablation A6 core: ranging at `distance_m` under each impairment case.
pub fn ablation_impairments(
    cases: &[(f64, Impairments)],
    distance_m: f64,
    trials: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> Vec<CaseErrors> {
    let pipelines: Vec<LocalizationPipeline> = cases
        .iter()
        .map(|&(_, imp)| {
            LocalizationPipeline::new(
                SystemConfig::milback_default(),
                Scene::indoor(distance_m, node_orientation_rad()),
            )
            .expect("valid configuration")
            .with_impairments(imp)
            .with_beat_threads(1)
        })
        .collect();
    let batch = run_fallible(cases.len() * trials, root_seed, cfg, |i, rng| {
        pipelines[i / trials]
            .localize(rng)
            .map(|fix| (fix.range_m - distance_m).abs() * 100.0)
            .map_err(|e| e.to_string())
    });
    cases
        .iter()
        .zip(group_by_point(trials, &batch.results))
        .map(|(&(case_id, _), (abs_errors_cm, failed))| CaseErrors {
            case_id,
            abs_errors_cm,
            failed,
        })
        .collect()
}

/// One coded-vs-raw uplink comparison point (Extension E2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodedUplinkPoint {
    /// AP–node distance, meters.
    pub distance_m: f64,
    /// log10 of the uncoded channel BER (floored at 1e-9).
    pub raw_log10_ber: f64,
    /// log10 of the residual BER after Hamming(7,4)+interleaving.
    pub coded_log10_ber: f64,
}

/// Extension E2 core: residual byte errors with and without FEC at each
/// distance (40 Mbps uplink).
pub fn extension_coded_uplink(
    distances: &[f64],
    payload_bytes: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> TrialBatch<CodedUplinkPoint, String> {
    run_fallible(distances.len(), root_seed, cfg, |i, rng| {
        let d = distances[i];
        let codec = PayloadCodec::new(7);
        let sim = LinkSimulator::new(
            SystemConfig::milback_default(),
            Scene::single_node(d, node_orientation_rad()),
        )
        .map_err(|e| e.to_string())?;
        // Raw channel BER from a long transfer.
        let payload: Vec<u8> = rng.bytes(payload_bytes);
        let out = sim.uplink(&payload, rng).map_err(|e| e.to_string())?;
        let raw_log10_ber = out.ber.max(1e-9).log10();
        // Coded: encode, ship the coded bits, decode, count residual errors.
        let coded_bits = codec.encode(&payload);
        let coded_bytes = bits_to_bytes(&coded_bits[..coded_bits.len() - coded_bits.len() % 8]);
        let coded_out = sim.uplink(&coded_bytes, rng).map_err(|e| e.to_string())?;
        let mut rx_bits = bytes_to_bits(&coded_out.decoded);
        rx_bits.resize(coded_bits.len(), false);
        let (decoded, _) = codec.decode(&rx_bits);
        let n = decoded.len().min(payload.len());
        let errors: u32 = decoded[..n]
            .iter()
            .zip(&payload[..n])
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        let residual = errors as f64 / (n * 8) as f64;
        Ok(CodedUplinkPoint {
            distance_m: d,
            raw_log10_ber,
            coded_log10_ber: residual.max(1e-9).log10(),
        })
    })
}

/// One step of the tracking extension: the truth and the (absolute-frame)
/// localization fix at that step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepFix {
    /// Time of the step, seconds.
    pub t_s: f64,
    /// True node position, AP coordinates.
    pub truth: Vec2,
    /// The localization fix, rotated into the absolute frame.
    pub fix: LocationFix,
}

/// Extension E3 core: per-step localization fixes for a node walking from
/// (3, −0.75) toward (3, +0.75) at 0.5 m/s while the AP steers its
/// boresight at the node. Each step is an independent trial; the caller
/// folds the fixes through the (inherently serial) Kalman tracker.
pub fn extension_tracking_fixes(
    steps: usize,
    dt_s: f64,
    root_seed: u64,
    cfg: &RunnerConfig,
    config: &SystemConfig,
) -> TrialBatch<StepFix, String> {
    run_fallible(steps, root_seed, cfg, |i, rng| {
        let t = i as f64 * dt_s;
        let truth = Vec2::new(3.0, -0.75 + 0.5 * t);
        let az = truth.y.atan2(truth.x);
        let mut scene = Scene::indoor(3.0, 0.0);
        scene.nodes = vec![NodePose {
            position: truth,
            facing_rad: std::f64::consts::PI + az,
        }];
        scene.ap = ApFrontend {
            boresight_rad: az,
            ..ApFrontend::milback_default()
        };
        let pipeline = LocalizationPipeline::new(config.clone(), scene)
            .map_err(|e| e.to_string())?
            .with_beat_threads(1);
        let fix = pipeline.localize(rng).map_err(|e| e.to_string())?;
        // The fix's angle is relative to the steered boresight.
        let abs_angle = fix.angle_rad + az;
        let fix_abs = LocationFix {
            position: Vec2::from_polar(fix.range_m, abs_angle),
            angle_rad: abs_angle,
            ..fix
        };
        Ok(StepFix {
            t_s: t,
            truth,
            fix: fix_abs,
        })
    })
}

/// One node-count point of the network-scaling extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetScalePoint {
    /// Number of nodes sharing the cell.
    pub nodes: usize,
    /// Mean per-node goodput over the campaign, bits/second.
    pub per_node_goodput_bps: f64,
    /// Mean slot collisions per node over the campaign.
    pub collisions_per_node: f64,
    /// Total node energy divided by total delivered packets, joules;
    /// `None` when the campaign delivered nothing (an `inf` sentinel here
    /// used to leak into CSV rows at high node counts).
    pub energy_per_packet_j: Option<f64>,
    /// Delivered packets over attempted packets, network-wide.
    pub delivery_rate: f64,
}

/// N nodes across a ±60° sector at 4 m: evenly spaced, so density directly
/// controls the neighbour separation SDM has to work with. Shared by the
/// `net_scale` and `mac_compare` sweeps so their curves are comparable.
fn sector_scene(n: usize) -> Scene {
    // `Scene::arc` computes the same `-span/2 + span·k/(n-1)` azimuths
    // (with the n == 1 division guarded), so the CSV anchors built on
    // this scene are unchanged by the shared-helper refactor.
    Scene::arc(n, 4.0, 120f64.to_radians(), node_orientation_rad())
}

/// The shared setup every sector-scene MAC sweep starts from: payload,
/// slot plan, network, and the per-node-count slot seed. One builder so
/// `net_scale`, `mac_compare`, the instrumented sweep, and the city-scale
/// sharded sweep all race over exactly the same campaign and stay
/// comparable row-for-row.
#[derive(Debug)]
pub struct SectorCampaign {
    /// The uplink payload every node reports.
    pub payload: Vec<u8>,
    /// The slot plan sized for that payload.
    pub plan: SlotPlan,
    /// The network over the ±60° sector scene.
    pub net: Network,
    /// The slot seed shared across sweeps at this node count, so e.g. the
    /// `mac_compare` "aloha" row reproduces the `net_scale` baseline.
    pub slot_seed: u64,
}

/// Builds the [`SectorCampaign`] for `n` nodes: default system config,
/// a `0x42`-filled payload, a `slots`-slot plan with 10 µs guards, and the
/// uniform sector scene. Errors are stringified for the fallible trial runner.
pub fn sector_campaign(
    n: usize,
    payload_bytes: usize,
    slots: usize,
    root_seed: u64,
) -> Result<SectorCampaign, String> {
    let config = SystemConfig::milback_default();
    let payload = vec![0x42u8; payload_bytes];
    let packet = Packet::uplink(payload.clone());
    let plan = SlotPlan::for_packet(
        slots,
        &packet,
        &config.fmcw,
        config.uplink_symbol_rate_hz,
        10e-6,
    )
    .map_err(|e| e.to_string())?;
    let net = Network::new(config, sector_scene(n)).map_err(|e| e.to_string())?;
    Ok(SectorCampaign {
        payload,
        plan,
        net,
        slot_seed: root_seed.wrapping_add(n as u64),
    })
}

/// Network-scaling extension core: a slotted-ALOHA campaign (on the
/// discrete-event engine's [`Network::run_slotted`]) for each node count,
/// with the nodes spread over a ±60° sector at 4 m so growing density both
/// fills slots *and* erodes SDM separability. Each node count is one
/// independent trial with its own deterministic RNG stream, so the sweep
/// is bit-identical at any thread count.
pub fn extension_net_scale(
    node_counts: &[usize],
    frames: usize,
    payload_bytes: usize,
    slots: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> TrialBatch<NetScalePoint, String> {
    run_fallible(node_counts.len(), root_seed, cfg, |i, rng| {
        let n = node_counts[i];
        let c = sector_campaign(n, payload_bytes, slots, root_seed)?;
        let r = c
            .net
            .run_slotted(frames, &c.payload, &c.plan, c.slot_seed, 20.0, rng)
            .map_err(|e| e.to_string())?;
        let goodput = (0..n).map(|idx| r.goodput_bps(idx)).sum::<f64>() / n as f64;
        let collisions: usize = r.nodes.iter().map(|nd| nd.collisions).sum();
        let delivered: usize = r.nodes.iter().map(|nd| nd.delivered).sum();
        let attempts: usize = r.nodes.iter().map(|nd| nd.attempts).sum();
        let energy: f64 = r.nodes.iter().map(|nd| nd.energy_j).sum();
        Ok(NetScalePoint {
            nodes: n,
            per_node_goodput_bps: goodput,
            collisions_per_node: collisions as f64 / n as f64,
            energy_per_packet_j: (delivered > 0).then(|| energy / delivered as f64),
            delivery_rate: delivered as f64 / attempts.max(1) as f64,
        })
    })
}

/// The MAC policies the `mac_compare` sweep races against each other, by
/// the [`MacPolicy::name`] each reports.
pub const MAC_POLICY_NAMES: [&str; 4] = ["aloha", "backoff", "polling", "sdm"];

/// Builds a fresh policy instance by name (see [`MAC_POLICY_NAMES`]).
/// `slot_seed` feeds the hashed-slot policies so a given (policy, scene)
/// pair is reproducible.
pub fn mac_policy_by_name(name: &str, slot_seed: u64) -> Option<Box<dyn MacPolicy>> {
    match name {
        "aloha" => Some(Box::new(SlottedAloha::new(slot_seed))),
        "backoff" => Some(Box::new(BackoffAloha::new(slot_seed, 5))),
        "polling" => Some(Box::new(RoundRobinPolling::new())),
        "sdm" => Some(Box::new(SdmAwareAssignment::new())),
        _ => None,
    }
}

/// One (policy, node count) cell of the MAC-comparison extension.
#[derive(Debug, Clone, PartialEq)]
pub struct MacComparePoint {
    /// Which [`MacPolicy`] ran (its `name()`).
    pub policy: &'static str,
    /// Number of nodes sharing the cell.
    pub nodes: usize,
    /// Network-wide slot transmissions attempted.
    pub attempts: usize,
    /// Network-wide packets delivered.
    pub delivered: usize,
    /// Network-wide slot collisions.
    pub collisions: usize,
    /// Delivered over attempted, network-wide.
    pub delivery_rate: f64,
    /// Mean per-node goodput over the campaign, bits/second.
    pub per_node_goodput_bps: f64,
    /// Total node energy per delivered packet, joules; `None` when the
    /// campaign delivered nothing.
    pub energy_per_packet_j: Option<f64>,
}

fn mac_compare_point(policy: &'static str, r: &SlottedRunReport) -> MacComparePoint {
    let n = r.nodes.len();
    let attempts: usize = r.nodes.iter().map(|nd| nd.attempts).sum();
    let delivered: usize = r.nodes.iter().map(|nd| nd.delivered).sum();
    let collisions: usize = r.nodes.iter().map(|nd| nd.collisions).sum();
    let energy: f64 = r.nodes.iter().map(|nd| nd.energy_j).sum();
    let goodput = (0..n).map(|idx| r.goodput_bps(idx)).sum::<f64>() / n.max(1) as f64;
    MacComparePoint {
        policy,
        nodes: n,
        attempts,
        delivered,
        collisions,
        delivery_rate: delivered as f64 / attempts.max(1) as f64,
        per_node_goodput_bps: goodput,
        energy_per_packet_j: (delivered > 0).then(|| energy / delivered as f64),
    }
}

/// MAC-comparison extension core: every policy in `policies` runs the same
/// sector-scene campaign as [`extension_net_scale`] at each node count.
/// Trials flatten as `policy-major × node-count-minor`; each cell is one
/// independent trial with its own deterministic RNG stream, and the slot
/// seed per node count matches `extension_net_scale`'s, so the "aloha" row
/// reproduces that baseline curve exactly.
pub fn extension_mac_compare(
    policies: &[&'static str],
    node_counts: &[usize],
    frames: usize,
    payload_bytes: usize,
    slots: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> TrialBatch<MacComparePoint, String> {
    run_fallible(
        policies.len() * node_counts.len(),
        root_seed,
        cfg,
        |i, rng| {
            let policy_name = policies[i / node_counts.len()];
            let n = node_counts[i % node_counts.len()];
            let c = sector_campaign(n, payload_bytes, slots, root_seed)?;
            let policy = mac_policy_by_name(policy_name, c.slot_seed)
                .ok_or_else(|| format!("unknown MAC policy {policy_name:?}"))?;
            let r = c
                .net
                .run_mac(policy, frames, &c.payload, &c.plan, 20.0, rng)
                .map_err(|e| e.to_string())?;
            Ok(mac_compare_point(policy_name, &r))
        },
    )
}

/// One policy's merged campaign instrumentation from
/// [`extension_mac_compare_instrumented`]: metrics folded across the
/// policy's node-count campaigns in deterministic trial order, plus —
/// when tracing was requested — the trace of its largest-node-count
/// campaign.
#[derive(Debug, Clone)]
pub struct PolicyInstrumentation {
    /// The policy's [`MacPolicy::name`].
    pub policy: &'static str,
    /// Counters/histograms merged across the policy's campaigns.
    pub metrics: Metrics,
    /// The largest-node-count campaign's trace, when tracing.
    pub trace: Option<TraceBuffer>,
}

/// The outcome of [`extension_mac_compare_instrumented`]: the same trial
/// batch [`extension_mac_compare`] produces (bit-identical — the parity
/// suite proves it), plus per-policy instrumentation.
#[derive(Debug)]
pub struct InstrumentedMacCompare {
    /// Per-cell campaign points, exactly as the uninstrumented sweep.
    pub batch: TrialBatch<MacComparePoint, String>,
    /// Per-policy instrumentation, in the sweep's policy order.
    pub policies: Vec<PolicyInstrumentation>,
}

/// [`extension_mac_compare`] with telemetry attached: every cell runs
/// with a metrics probe, and — when `trace_capacity` is set — each
/// policy's **largest** node-count campaign also records a full trace
/// (engine dispatches, slot outcomes, policy decisions, energy draws).
///
/// The campaign numbers are bit-identical to the uninstrumented sweep:
/// probes only copy values the simulation already computed, and the trial
/// streams are untouched. Metrics merge across a policy's node counts in
/// trial order, so the merged registries are deterministic at any thread
/// count too.
#[allow(clippy::too_many_arguments)]
pub fn extension_mac_compare_instrumented(
    policies: &[&'static str],
    node_counts: &[usize],
    frames: usize,
    payload_bytes: usize,
    slots: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
    trace_capacity: Option<usize>,
) -> InstrumentedMacCompare {
    let per_policy = node_counts.len();
    let traced_cell = per_policy.saturating_sub(1);
    let inner = run_fallible(
        policies.len() * per_policy,
        root_seed,
        cfg,
        |i, rng| -> Result<(MacComparePoint, Metrics, Option<TraceBuffer>), String> {
            let policy_name = policies[i / per_policy];
            let n = node_counts[i % per_policy];
            let c = sector_campaign(n, payload_bytes, slots, root_seed)?;
            let policy = mac_policy_by_name(policy_name, c.slot_seed)
                .ok_or_else(|| format!("unknown MAC policy {policy_name:?}"))?;
            let mut probe = match trace_capacity {
                Some(cap) if i % per_policy == traced_cell => CampaignProbe::with_trace(cap),
                _ => CampaignProbe::with_metrics(),
            };
            let r = c
                .net
                .run_mac_probed(policy, frames, &c.payload, &c.plan, 20.0, rng, &mut probe)
                .map_err(|e| e.to_string())?;
            let metrics = probe.take_metrics().unwrap_or_default();
            let trace = probe.trace.take().map(|sink| sink.into_buffer());
            Ok((mac_compare_point(policy_name, &r), metrics, trace))
        },
    );
    // Fold per-policy in trial order: trials flatten policy-major, so the
    // merge order (and the serialized registries) is deterministic.
    let mut folded: Vec<PolicyInstrumentation> = policies
        .iter()
        .map(|&p| PolicyInstrumentation {
            policy: p,
            metrics: Metrics::new(),
            trace: None,
        })
        .collect();
    for (i, result) in inner.results.iter().enumerate() {
        if let Ok((_, metrics, trace)) = result {
            // Queue-depth histograms arrive inside `metrics` already: the
            // engine tallies every dispatch losslessly (the old trace-ring
            // reconstruction silently truncated once the ring evicted).
            let slot = &mut folded[i / per_policy];
            slot.metrics.merge_from(metrics);
            if let Some(buf) = trace {
                // The ring's own eviction count rides along in the metrics
                // document, so a truncated trace is visible downstream
                // instead of silently looking complete.
                slot.metrics.inc("trace_dropped_records", buf.dropped());
                slot.trace = Some(buf.clone());
            }
        }
    }
    InstrumentedMacCompare {
        batch: TrialBatch {
            results: inner
                .results
                .into_iter()
                .map(|r| r.map(|(point, _, _)| point))
                .collect(),
        },
        policies: folded,
    }
}

/// One node-count point of the city-scale sharded sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NetScaleCityPoint {
    /// Total nodes across the campaign.
    pub nodes: usize,
    /// Spatial cells the scene was sharded into.
    pub cells: usize,
    /// Worker threads the cells fanned out over.
    pub threads: usize,
    /// Frames per cell campaign.
    pub frames: usize,
    /// Network-wide slot transmissions attempted.
    pub attempts: u64,
    /// Network-wide packets delivered.
    pub delivered: u64,
    /// Network-wide slot collisions.
    pub collisions: u64,
    /// Slot grants offered to the AP service pipelines, summed over cells.
    pub offered: u64,
    /// Grants that completed all three pipeline stages and reached the air.
    pub served: u64,
    /// Grants that hit a full stage queue (dropped + deferred + degraded).
    pub overflow: u64,
    /// Delivered over attempted; `None` before any attempt.
    pub delivery_rate: Option<f64>,
    /// Mean node energy over the campaign, joules.
    pub energy_per_node_j: Option<f64>,
    /// Mean per-delivery SNR across delivering nodes, dB; `None` when
    /// nothing delivered.
    pub mean_snr_db: Option<f64>,
    /// Simulated nodes per wall-clock second — the sweep's throughput axis.
    pub nodes_per_sec: f64,
    /// Wall-clock time for this point, seconds.
    pub wall_s: f64,
    /// Nodes outside AP coverage (0 under the default unbounded model).
    pub gap_nodes: u64,
    /// Packets delivered over multi-hop relay routes.
    pub relayed: u64,
    /// Mean transmissions per relayed delivery; `None` when nothing
    /// relayed (the relay-disabled CSV cell is empty).
    pub mean_relay_hops: Option<f64>,
    /// Packets offered on the lifecycle ledger, summed over cells in
    /// cell-index order (0 in a telemetry-off build).
    pub offered_packets: u64,
    /// Packets dropped on the lifecycle ledger, all reasons combined.
    pub dropped_packets: u64,
    /// Slot-wait sketch median, µs; `None` when the sketch is empty.
    pub slot_wait_p50_us: Option<f64>,
    /// Slot-wait sketch 95th percentile, µs; `None` when empty.
    pub slot_wait_p95_us: Option<f64>,
    /// Slot-wait sketch 99th percentile, µs; `None` when empty.
    pub slot_wait_p99_us: Option<f64>,
}

/// City-scale network sweep core: each node count shards the sector scene
/// into `⌈nodes / cell_size⌉` spatial cells and runs one slotted-ALOHA
/// campaign per cell via [`Network::run_sharded_mac`] — parallel across
/// cells, streaming straight into a [`milback_core::CampaignAggregate`], so
/// peak report
/// memory is O(cells + buckets) and a 10⁵–10⁶-node campaign fits where the
/// per-node `Vec` path would not. Unlike the room-scale sweeps, the
/// parallelism lives *inside* each point (the cell fan-out), so points run
/// serially here; results are bit-identical at any `cfg.threads`.
///
/// Seeding: point `i` derives its campaign seed via the runner's
/// [`trial_seed`] mix, and each cell re-mixes that with its cell index
/// ([`milback_core::cell_seed`]) — the same SplitMix64 discipline end to
/// end. Wall-clock throughput (`nodes_per_sec`) is measured, so it varies
/// run to run; every simulation field is deterministic.
///
/// `service` is each cell AP's **Capture → Plan → Transmit** pipeline
/// shape. A bounded queue with [`OverflowPolicy::Defer`] keeps every
/// ledger column bit-identical to the instantaneous campaign (Defer is
/// FIFO, so the per-cell RNG streams are consumed unchanged) while the
/// new `offered`/`served`/`overflow` columns expose the service backlog.
#[allow(clippy::too_many_arguments)]
pub fn extension_net_scale_city(
    node_counts: &[usize],
    cell_size: usize,
    frames: usize,
    payload_bytes: usize,
    slots: usize,
    root_seed: u64,
    service: &ApServiceConfig,
    relay: &RelayConfig,
    cfg: &RunnerConfig,
) -> Result<Vec<NetScaleCityPoint>, String> {
    assert!(cell_size > 0, "cells must hold at least one node");
    node_counts
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let c = sector_campaign(n, payload_bytes, slots, root_seed)?;
            let cells = n.div_ceil(cell_size);
            let campaign_seed = trial_seed(root_seed, i);
            let started = std::time::Instant::now();
            // A disabled relay keeps the plain [`SlottedAloha`] cells, so
            // the sweep's pre-relay columns stay bit-identical to the
            // pre-relay anchors; an enabled one swaps in the relay-aware
            // policy per cell.
            let agg = c
                .net
                .run_sharded_mac_relay(
                    cells,
                    cfg.threads,
                    campaign_seed,
                    frames,
                    &c.payload,
                    &c.plan,
                    20.0,
                    service,
                    relay,
                    |_, seed| {
                        if relay.is_disabled() {
                            Box::new(SlottedAloha::new(seed)) as Box<dyn MacPolicy>
                        } else {
                            Box::new(RelayAwareMac::new(seed, *relay)) as Box<dyn MacPolicy>
                        }
                    },
                )
                .map_err(|e| e.to_string())?;
            let wall_s = started.elapsed().as_secs_f64();
            Ok(NetScaleCityPoint {
                nodes: n,
                cells: agg.cells as usize,
                threads: cfg.threads,
                frames,
                attempts: agg.attempts,
                delivered: agg.delivered,
                collisions: agg.collisions,
                offered: agg.service.offered,
                served: agg.service.served,
                overflow: agg.service.overflowed(),
                delivery_rate: agg.delivery_rate(),
                energy_per_node_j: agg.mean_energy_per_node_j(),
                mean_snr_db: agg.mean_snr_db(),
                nodes_per_sec: if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 },
                wall_s,
                gap_nodes: agg.gap_nodes,
                relayed: agg.relayed,
                mean_relay_hops: agg.mean_relay_hops(),
                offered_packets: agg.lifecycle.offered,
                dropped_packets: agg.lifecycle.dropped(),
                slot_wait_p50_us: agg.lifecycle.slot_wait_us.quantile(0.50),
                slot_wait_p95_us: agg.lifecycle.slot_wait_us.quantile(0.95),
                slot_wait_p99_us: agg.lifecycle.slot_wait_us.quantile(0.99),
            })
        })
        .collect()
}

/// The overflow policies the offered-load sweep races, by CSV tag.
pub const OVERFLOW_POLICY_NAMES: [&str; 3] = ["drop", "defer", "degrade"];

/// Maps an [`OVERFLOW_POLICY_NAMES`] tag to its [`OverflowPolicy`].
pub fn overflow_policy_by_name(name: &str) -> Option<OverflowPolicy> {
    match name {
        "drop" => Some(OverflowPolicy::Drop),
        "defer" => Some(OverflowPolicy::Defer),
        "degrade" => Some(OverflowPolicy::Degrade),
        _ => None,
    }
}

/// One (overflow policy, node count) cell of the offered-vs-served sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NetLoadPoint {
    /// Overflow policy tag (see [`OVERFLOW_POLICY_NAMES`]).
    pub overflow: &'static str,
    /// Nodes contending for the frame.
    pub nodes: usize,
    /// Slot grants offered to the AP pipeline over the campaign.
    pub offered: u64,
    /// Grants that completed all three stages and reached the air.
    pub served: u64,
    /// Grants shed at a full stage queue (never transmitted).
    pub dropped: u64,
    /// Grants admitted past the queue bound and served late.
    pub deferred: u64,
    /// Grants admitted with the degraded (no-SDM) plan.
    pub degraded: u64,
    /// Offered load over the nominal campaign airtime, grants/second.
    pub offered_per_s: f64,
    /// Served load over the same axis, grants/second.
    pub served_per_s: f64,
    /// Network-wide packets delivered.
    pub delivered: u64,
    /// Delivered over attempted; `None` before any attempt.
    pub delivery_rate: Option<f64>,
}

/// Offered-vs-served extension core: sweeps offered load past the AP
/// service pipeline's capacity to expose the served-load knee.
///
/// Every cell runs [`SlottedAloha`], so the offered load — the occupied
/// slots per frame, each one a grant the AP must serve — grows
/// monotonically with node count (`slots·(1−(1−1/slots)^nodes)` in
/// expectation, from ~1 at a single node to every slot at high density).
/// The pipeline's Capture stage takes **two slot widths** behind a
/// `queue_capacity`-deep stage queue, so service capacity is half the
/// slot rate: once offered load passes `slots / 2` grants per frame,
/// `Drop` saturates `served` (the knee), `Defer` piles spill into the
/// queue, and `Degrade` trades SDM concurrency for service.
///
/// Trials flatten `overflow-policy-major × node-count-minor`; each cell is
/// one independent trial on its own SplitMix64 stream, bit-identical at
/// any thread count. The load axes (`*_per_s`) are computed over the
/// nominal campaign airtime `frames × frame_ps` — simulated time, not
/// wall-clock — so they are deterministic too.
#[allow(clippy::too_many_arguments)]
pub fn extension_net_load(
    overflows: &[&'static str],
    node_counts: &[usize],
    frames: usize,
    payload_bytes: usize,
    slots: usize,
    queue_capacity: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> TrialBatch<NetLoadPoint, String> {
    run_fallible(
        overflows.len() * node_counts.len(),
        root_seed,
        cfg,
        |i, rng| {
            let tag = overflows[i / node_counts.len()];
            let n = node_counts[i % node_counts.len()];
            let policy = overflow_policy_by_name(tag)
                .ok_or_else(|| format!("unknown overflow policy {tag:?}"))?;
            let c = sector_campaign(n, payload_bytes, slots, root_seed)?;
            let service = ApServiceConfig::instantaneous()
                .with_stage_latencies(2 * c.plan.slot_ps, 0, 0)
                .with_queue(queue_capacity, policy);
            let r = c
                .net
                .run_mac_service(
                    Box::new(SlottedAloha::new(c.slot_seed)),
                    frames,
                    &c.payload,
                    &c.plan,
                    20.0,
                    rng,
                    &service,
                )
                .map_err(|e| e.to_string())?;
            let airtime_s = frames as f64 * ps_to_secs(c.plan.frame_ps());
            let attempts: usize = r.nodes.iter().map(|nd| nd.attempts).sum();
            let delivered: usize = r.nodes.iter().map(|nd| nd.delivered).sum();
            Ok(NetLoadPoint {
                overflow: tag,
                nodes: n,
                offered: r.service.offered,
                served: r.service.served,
                dropped: r.service.dropped,
                deferred: r.service.deferred,
                degraded: r.service.degraded,
                offered_per_s: r.service.offered as f64 / airtime_s,
                served_per_s: r.service.served as f64 / airtime_s,
                delivered: delivered as u64,
                delivery_rate: (attempts > 0).then(|| delivered as f64 / attempts as f64),
            })
        },
    )
}

/// AP coverage range of the relay sweep's gapped scenes, meters: the
/// 4 m inner arc is covered, the 8 m and 12 m gap rings are not.
pub const RELAY_COVERAGE_RANGE_M: f64 = 6.0;
/// Tag-to-tag neighbor range of the relay sweep, meters: reaches the
/// 4 m ring-to-ring spacing of the gapped scene, nothing further.
pub const RELAY_TAG_RANGE_M: f64 = 4.5;
/// Deterministic per-tag-hop SNR penalty of the relay sweep, dB.
pub const RELAY_HOP_SNR_PENALTY_DB: f64 = 3.0;

/// The [`RelayConfig`] every relay sweep cell shares, at hop budget
/// `max_hops`.
pub fn relay_sweep_config(max_hops: usize) -> RelayConfig {
    RelayConfig {
        coverage: CoverageModel::with_range(RELAY_COVERAGE_RANGE_M),
        max_hops,
        tag_range_m: RELAY_TAG_RANGE_M,
        hop_snr_penalty_db: RELAY_HOP_SNR_PENALTY_DB,
    }
}

/// The sector scene with a `gap_fraction` share of its nodes pushed past
/// AP coverage: covered nodes keep the 4 m arc, and the gap nodes split
/// between an 8 m ring (two thirds — one tag hop from coverage) and a
/// 12 m ring (the rest — two tag hops, each 12 m node sharing an azimuth
/// with its 8 m forwarder so the ring spacing is exactly 4 m). The 8 m
/// majority puts the two-transmission recovery strictly above one half
/// of the gap population.
fn gapped_sector_scene(n: usize, gap_fraction: f64) -> Scene {
    let span = 120f64.to_radians();
    let n_gap = ((n as f64 * gap_fraction).round() as usize).min(n);
    let n_far = n_gap / 3;
    let n_near = n_gap - n_far;
    let mut scene = Scene::arc(n - n_gap, 4.0, span, node_orientation_rad());
    for k in 0..n_near {
        scene = scene.with_node_at(
            8.0,
            Scene::arc_azimuth_rad(k, n_near, span),
            node_orientation_rad(),
        );
    }
    for k in 0..n_far {
        scene = scene.with_node_at(
            12.0,
            Scene::arc_azimuth_rad(k, n_near, span),
            node_orientation_rad(),
        );
    }
    scene
}

/// One (gap fraction, hop budget) cell of the relay recovery sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NetRelayPoint {
    /// Share of the scene's nodes placed outside AP coverage.
    pub gap_fraction: f64,
    /// Transmission budget per packet (tag hops + terminal uplink).
    pub max_hops: usize,
    /// Total nodes in the scene.
    pub nodes: usize,
    /// Nodes the coverage model classified as gap nodes.
    pub gap_nodes: u64,
    /// Packets attempted network-wide.
    pub attempts: u64,
    /// Packets delivered network-wide (direct + relayed).
    pub delivered: u64,
    /// Delivered over attempted; `None` before any attempt.
    pub delivery_rate: Option<f64>,
    /// Packets attempted by gap nodes.
    pub gap_attempts: u64,
    /// Packets gap nodes got through (necessarily relayed).
    pub gap_delivered: u64,
    /// Gap-node delivery rate; `None` with no gap attempts.
    pub gap_delivery_rate: Option<f64>,
    /// Packets delivered over relay routes.
    pub relayed: u64,
    /// Forwarding transmissions performed for other nodes.
    pub forwarded: u64,
    /// Mean transmissions per relayed delivery; `None` when nothing
    /// relayed.
    pub mean_relay_hops: Option<f64>,
    /// Forwarding energy per relayed delivery, joules; `None` when
    /// nothing relayed — the sweep's energy-cost axis.
    pub relay_energy_per_delivered_j: Option<f64>,
    /// Mean extra latency per relayed delivery, seconds; `None` when
    /// nothing relayed.
    pub mean_relay_latency_s: Option<f64>,
}

/// Relay recovery extension core: sweeps coverage-gap fraction × hop
/// budget over the gapped sector scene and reports how much gap-node
/// delivery multi-hop relaying buys, and at what forwarding-energy and
/// latency cost.
///
/// Geometry fixes the expected shape: at `max_hops == 1` (direct only)
/// gap delivery is exactly zero; `2` recovers the 8 m ring (two thirds
/// of the gap population); `3` also recovers the 12 m ring. Each cell is
/// one independent trial on its own SplitMix64 stream — bit-identical at
/// any thread count.
#[allow(clippy::too_many_arguments)]
pub fn extension_net_relay(
    gap_fractions: &[f64],
    hop_budgets: &[usize],
    nodes: usize,
    frames: usize,
    payload_bytes: usize,
    slots: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> TrialBatch<NetRelayPoint, String> {
    run_fallible(
        gap_fractions.len() * hop_budgets.len(),
        root_seed,
        cfg,
        |i, rng| {
            let gap_fraction = gap_fractions[i / hop_budgets.len()];
            let max_hops = hop_budgets[i % hop_budgets.len()];
            let config = SystemConfig::milback_default();
            let payload = vec![0x42u8; payload_bytes];
            let packet = Packet::uplink(payload.clone());
            let plan = SlotPlan::for_packet(
                slots,
                &packet,
                &config.fmcw,
                config.uplink_symbol_rate_hz,
                10e-6,
            )
            .map_err(|e| e.to_string())?;
            let net = Network::new(config, gapped_sector_scene(nodes, gap_fraction))
                .map_err(|e| e.to_string())?;
            let relay = relay_sweep_config(max_hops);
            let slot_seed = root_seed.wrapping_add(nodes as u64);
            let r = net
                .run_mac_relay(
                    Box::new(RelayAwareMac::new(slot_seed, relay)),
                    frames,
                    &payload,
                    &plan,
                    20.0,
                    rng,
                    &relay,
                )
                .map_err(|e| e.to_string())?;
            let agg = CampaignAggregate::from_report(&r);
            Ok(NetRelayPoint {
                gap_fraction,
                max_hops,
                nodes,
                gap_nodes: agg.gap_nodes,
                attempts: agg.attempts,
                delivered: agg.delivered,
                delivery_rate: agg.delivery_rate(),
                gap_attempts: agg.gap_attempts,
                gap_delivered: agg.gap_delivered,
                gap_delivery_rate: agg.gap_delivery_rate(),
                relayed: agg.relayed,
                forwarded: agg.forwarded,
                mean_relay_hops: agg.mean_relay_hops(),
                relay_energy_per_delivered_j: agg.relay_energy_per_delivered_j(),
                mean_relay_latency_s: agg.mean_relay_latency_s(),
            })
        },
    )
}

/// Fraction of the audit sweep's relay-leg nodes placed past AP coverage.
pub const NET_AUDIT_GAP_FRACTION: f64 = 0.25;

/// The congested AP pipeline every `net_audit` cell runs: a Capture stage
/// two slot widths deep behind a one-slot queue under
/// [`OverflowPolicy::Drop`], so `service_shed` drops are on the books and
/// the residence sketch sees real queueing — while the Drop policy keeps
/// shed grants off the air instead of perturbing the slot schedule.
pub fn net_audit_service(plan: &SlotPlan) -> ApServiceConfig {
    ApServiceConfig::instantaneous()
        .with_stage_latencies(2 * plan.slot_ps, 0, 0)
        .with_queue(1, OverflowPolicy::Drop)
}

/// One (MAC policy, relay on/off) cell of the packet-lifecycle audit
/// sweep: the cell's full [`LifecycleStats`] ledger, conservation-checked
/// (`offered == delivered + Σ drops`) before it is returned.
#[derive(Debug, Clone, PartialEq)]
pub struct NetAuditPoint {
    /// MAC policy tag (see [`MAC_POLICY_NAMES`]).
    pub policy: &'static str,
    /// Whether this cell ran the gapped scene with 2-hop relaying.
    pub relay: bool,
    /// Nodes in the scene.
    pub nodes: usize,
    /// The audited lifecycle ledger.
    pub lifecycle: LifecycleStats,
}

/// Packet-lifecycle audit core: `policies × {direct, relay}` cells over
/// the 64-node sector scene (the relay leg swaps in the
/// [`NET_AUDIT_GAP_FRACTION`]-gapped scene and a 2-hop budget), every cell
/// under the congested [`net_audit_service`] pipeline so all three loss
/// families — channel (collision/SDM/decode), service (shed), and
/// coverage (routeless gap nodes) — appear in one sweep.
///
/// Every cell's ledger is audited before it is returned: a conservation
/// leak surfaces as the cell's error, not as a silently wrong row. The
/// relay leg keeps each policy's own schedule except `"aloha"`, which maps
/// to [`RelayAwareMac`] (the relay-aware slotted-ALOHA variant) so the
/// sweep exercises granted relay chains, not just routeless drops. Cells
/// are independent trials on their own SplitMix64 streams — bit-identical
/// at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn extension_net_audit(
    policies: &[&'static str],
    nodes: usize,
    frames: usize,
    payload_bytes: usize,
    slots: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
) -> TrialBatch<NetAuditPoint, String> {
    run_fallible(policies.len() * 2, root_seed, cfg, |i, rng| {
        let policy_name = policies[i / 2];
        let with_relay = i % 2 == 1;
        let config = SystemConfig::milback_default();
        let payload = vec![0x42u8; payload_bytes];
        let packet = Packet::uplink(payload.clone());
        let plan = SlotPlan::for_packet(
            slots,
            &packet,
            &config.fmcw,
            config.uplink_symbol_rate_hz,
            10e-6,
        )
        .map_err(|e| e.to_string())?;
        let scene = if with_relay {
            gapped_sector_scene(nodes, NET_AUDIT_GAP_FRACTION)
        } else {
            sector_scene(nodes)
        };
        let net = Network::new(config, scene).map_err(|e| e.to_string())?;
        let relay = if with_relay {
            relay_sweep_config(2)
        } else {
            RelayConfig::disabled()
        };
        let slot_seed = root_seed.wrapping_add(nodes as u64);
        let service = net_audit_service(&plan);
        let policy: Box<dyn MacPolicy> = if with_relay && policy_name == "aloha" {
            Box::new(RelayAwareMac::new(slot_seed, relay))
        } else {
            mac_policy_by_name(policy_name, slot_seed)
                .ok_or_else(|| format!("unknown MAC policy {policy_name:?}"))?
        };
        let r = net
            .run_mac_relay_service(policy, frames, &payload, &plan, 20.0, rng, &service, &relay)
            .map_err(|e| e.to_string())?;
        r.lifecycle.audit().map_err(|e| e.to_string())?;
        Ok(NetAuditPoint {
            policy: policy_name,
            relay: with_relay,
            nodes,
            lifecycle: r.lifecycle,
        })
    })
}

/// The sharded city path's merged lifecycle ledger at one worker-thread
/// count: the gapped audit scene under [`net_audit_service`] congestion
/// and a 2-hop relay budget, sharded into `cells` spatial cells via
/// [`Network::run_sharded_mac_relay`]. Callers run this across
/// `MILBACK_THREADS`-style thread counts and demand the returned sketches
/// be bit-identical — the merge happens serially in cell-index order, so
/// they are. The merged ledger is conservation-audited here on top of the
/// runner's own per-cell audit.
#[allow(clippy::too_many_arguments)]
pub fn net_audit_sharded_lifecycle(
    nodes: usize,
    cells: usize,
    threads: usize,
    frames: usize,
    payload_bytes: usize,
    slots: usize,
    root_seed: u64,
) -> Result<LifecycleStats, String> {
    let config = SystemConfig::milback_default();
    let payload = vec![0x42u8; payload_bytes];
    let packet = Packet::uplink(payload.clone());
    let plan = SlotPlan::for_packet(
        slots,
        &packet,
        &config.fmcw,
        config.uplink_symbol_rate_hz,
        10e-6,
    )
    .map_err(|e| e.to_string())?;
    let net = Network::new(config, gapped_sector_scene(nodes, NET_AUDIT_GAP_FRACTION))
        .map_err(|e| e.to_string())?;
    let relay = relay_sweep_config(2);
    let service = net_audit_service(&plan);
    let agg = net
        .run_sharded_mac_relay(
            cells,
            threads,
            trial_seed(root_seed, 0),
            frames,
            &payload,
            &plan,
            20.0,
            &service,
            &relay,
            |_, seed| Box::new(RelayAwareMac::new(seed, relay)) as Box<dyn MacPolicy>,
        )
        .map_err(|e| e.to_string())?;
    agg.lifecycle.audit().map_err(|e| e.to_string())?;
    Ok(agg.lifecycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_by_point_splits_and_counts() {
        let results: Vec<Result<u32, ()>> = vec![Ok(1), Err(()), Ok(3), Ok(4), Ok(5), Err(())];
        let groups = group_by_point(3, &results);
        assert_eq!(groups, vec![(vec![1, 3], 1), (vec![4, 5], 1)]);
    }

    /// The offered-load sweep is bit-identical at any thread count, and
    /// every cell conserves grants: `served ≤ offered` always, with
    /// `served + dropped = offered` (defer/degrade spill is still served).
    #[test]
    fn net_load_sweep_conserves_grants_at_any_thread_count() {
        let counts = [1, 4, 16];
        let run = |cfg: &RunnerConfig| {
            extension_net_load(&OVERFLOW_POLICY_NAMES, &counts, 6, 8, 4, 1, 0x10AD, cfg)
        };
        let serial = run(&RunnerConfig::serial());
        assert_eq!(
            serial.ok_count(),
            OVERFLOW_POLICY_NAMES.len() * counts.len(),
            "every cell must simulate"
        );
        let parallel = run(&RunnerConfig::with_threads(4));
        assert_eq!(serial.results, parallel.results);
        let mut overflowed = 0;
        for p in serial.oks() {
            assert!(p.served <= p.offered, "{p:?}");
            assert_eq!(p.served + p.dropped, p.offered, "{p:?}");
            assert!(p.served_per_s <= p.offered_per_s, "{p:?}");
            match p.overflow {
                "drop" => assert_eq!(p.deferred + p.degraded, 0, "{p:?}"),
                "defer" => assert_eq!(p.dropped + p.degraded, 0, "{p:?}"),
                "degrade" => assert_eq!(p.dropped + p.deferred, 0, "{p:?}"),
                other => panic!("unknown overflow tag {other:?}"),
            }
            overflowed += p.dropped + p.deferred + p.degraded;
        }
        assert!(overflowed > 0, "the sweep never pushed past capacity");
    }

    /// The relay recovery sweep is bit-identical at any thread count, and
    /// its geometry delivers the headline shape: gap delivery is exactly
    /// zero at hop budget 1, recovers past one half at budget ≥ 2, and
    /// the forwarding energy is on the books for every relayed packet.
    #[test]
    fn net_relay_sweep_recovers_gap_delivery_deterministically() {
        let gaps = [0.0, 0.5];
        let hops = [1, 2, 3];
        let run = |cfg: &RunnerConfig| extension_net_relay(&gaps, &hops, 12, 6, 8, 8, 0x9E1A, cfg);
        let serial = run(&RunnerConfig::serial());
        assert_eq!(
            serial.ok_count(),
            gaps.len() * hops.len(),
            "every cell must simulate"
        );
        let parallel = run(&RunnerConfig::with_threads(4));
        assert_eq!(serial.results, parallel.results);
        for p in serial.oks() {
            assert!(p.attempts > 0, "{p:?}");
            if p.gap_fraction == 0.0 {
                assert_eq!((p.gap_nodes, p.relayed), (0, 0), "{p:?}");
                assert_eq!(p.gap_delivery_rate, None, "{p:?}");
            } else if p.max_hops == 1 {
                assert!(p.gap_nodes > 0, "{p:?}");
                assert_eq!(p.gap_delivered, 0, "{p:?}");
                assert_eq!(p.gap_delivery_rate, Some(0.0), "{p:?}");
            } else {
                assert!(p.gap_delivery_rate.unwrap() > 0.5, "{p:?}");
                assert!(p.relayed > 0 && p.forwarded > 0, "{p:?}");
                assert!(p.relay_energy_per_delivered_j.unwrap() > 0.0, "{p:?}");
                assert!(p.mean_relay_latency_s.unwrap() > 0.0, "{p:?}");
            }
        }
    }

    /// The lifecycle audit sweep is bit-identical at any thread count,
    /// every cell's ledger conserves (a violation would have failed the
    /// cell), and — with telemetry on — the sweep exercises all three loss
    /// families plus relayed deliveries somewhere in the grid.
    #[test]
    fn net_audit_sweep_conserves_at_any_thread_count() {
        let run =
            |cfg: &RunnerConfig| extension_net_audit(&MAC_POLICY_NAMES, 16, 6, 8, 4, 0xA0D1, cfg);
        let serial = run(&RunnerConfig::serial());
        assert_eq!(
            serial.ok_count(),
            MAC_POLICY_NAMES.len() * 2,
            "every cell must simulate and conserve: {:?}",
            serial
                .results
                .iter()
                .filter_map(|r| r.as_ref().err())
                .collect::<Vec<_>>()
        );
        let parallel = run(&RunnerConfig::with_threads(4));
        assert_eq!(serial.results, parallel.results);
        #[cfg(feature = "telemetry")]
        {
            let mut total = LifecycleStats::new();
            for p in serial.oks() {
                assert!(p.lifecycle.offered > 0, "{p:?}");
                assert_eq!(
                    p.lifecycle.offered,
                    p.lifecycle.delivered() + p.lifecycle.dropped(),
                    "{p:?}"
                );
                if !p.relay {
                    // The uniform 4 m sector is fully covered: no
                    // coverage-family drops without a gap ring.
                    assert_eq!(p.lifecycle.drops[3] + p.lifecycle.drops[4], 0, "{p:?}");
                }
                total.merge_from(&p.lifecycle);
            }
            total.audit().expect("the merged sweep ledger conserves");
            assert!(total.delivered_relayed > 0, "no relay chain delivered");
            let channel = total.drops[0] + total.drops[1] + total.drops[5];
            assert!(channel > 0, "no channel-family drops: {total:?}");
            assert!(total.drops[2] > 0, "the congested pipeline never shed");
            assert!(total.drops[3] > 0, "no routeless gap drops: {total:?}");
        }
    }

    /// The sharded city path reports the same lifecycle ledger — counters
    /// `==` and sketch sums bit-equal — at 1/2/4/8 worker threads.
    #[test]
    fn sharded_lifecycle_is_thread_count_invariant() {
        let run = |threads| net_audit_sharded_lifecycle(24, 4, threads, 4, 8, 6, 0xC17).unwrap();
        let reference = run(1);
        reference.audit().expect("the merged ledger conserves");
        for threads in [2, 4, 8] {
            let l = run(threads);
            assert_eq!(reference, l, "ledger changed at {threads} threads");
            for (a, b) in [
                (&reference.slot_wait_us, &l.slot_wait_us),
                (&reference.service_residence_us, &l.service_residence_us),
                (&reference.relay_extra_us, &l.relay_extra_us),
            ] {
                assert_eq!(a.sum.to_bits(), b.sum.to_bits());
            }
        }
        #[cfg(feature = "telemetry")]
        assert!(
            reference.offered > 0,
            "the sharded campaign offered nothing"
        );
    }

    #[test]
    fn spot_checks_are_thread_count_invariant() {
        let cases = [(10e6, 2.0)];
        let serial = fig15_spot_checks(&cases, 400, 0xF15, &RunnerConfig::serial());
        let parallel = fig15_spot_checks(&cases, 400, 0xF15, &RunnerConfig::with_threads(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial.ok_count(), 1);
    }
}
