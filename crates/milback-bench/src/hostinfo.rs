//! Host metadata shared by every benchmark artifact.
//!
//! Both `BENCH_*.json` files (and `METRICS_mac.json`) embed the same
//! [`HostInfo`] block, so speedup numbers can always be judged against
//! the machine that produced them — the two hand-rolled `"cores"` fields
//! the bench reports used to carry drifted independently; this is the one
//! source of truth.

use mmwave_sigproc::parallel;

/// The host facts that contextualize a benchmark number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Physical parallelism the OS reports.
    pub cores: usize,
    /// Worker threads the harness actually uses (`MILBACK_THREADS`).
    pub threads: usize,
    /// The compiler that built the binary (`rustc --version`).
    pub rustc: String,
    /// Cargo features active in this build (currently just `telemetry`).
    pub features: Vec<&'static str>,
}

impl HostInfo {
    /// Captures the current host.
    pub fn capture() -> Self {
        Self {
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            threads: parallel::max_threads(),
            // Baked in by build.rs from the toolchain that compiled us.
            rustc: env!("MILBACK_RUSTC_VERSION").to_string(),
            features: if cfg!(feature = "telemetry") {
                vec!["telemetry"]
            } else {
                Vec::new()
            },
        }
    }

    /// The shared `"host"` JSON object embedded in every bench artifact.
    pub fn to_json(&self) -> String {
        let features = self
            .features
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{ \"cores\": {}, \"threads\": {}, \"rustc\": \"{}\", \"features\": [{features}] }}",
            self.cores,
            self.threads,
            self.rustc.replace('"', "'")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_sane_and_serializes() {
        let h = HostInfo::capture();
        assert!(h.cores >= 1);
        assert!(h.threads >= 1);
        assert!(h.rustc.contains("rustc"), "got {:?}", h.rustc);
        let json = h.to_json();
        assert!(json.contains("\"cores\":"));
        assert!(json.contains("\"rustc\":"));
        if cfg!(feature = "telemetry") {
            assert!(json.contains("\"telemetry\""));
        } else {
            assert!(json.contains("\"features\": []"));
        }
    }
}
