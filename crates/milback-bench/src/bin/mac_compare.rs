//! MAC-comparison extension: races the four `MacPolicy` implementations —
//! slotted ALOHA, ALOHA with capped exponential backoff, AP round-robin
//! polling, and SDM-aware slot assignment — over the same ±60°-sector cell
//! as `net_scale`, sweeping the node count.
//!
//! Each (policy, node count) cell is one campaign on the discrete-event
//! engine ([`milback_core::Network::run_mac`]) through the trial-parallel
//! runner, so the CSV is bit-identical at any thread count; the root seed
//! and slot seeds match `net_scale`'s, so the ALOHA rows reproduce that
//! baseline curve exactly.
//!
//! The campaigns run instrumented (bit-identical to the plain sweep — the
//! parity suite proves it): per-policy counters and histograms land in
//! `results/METRICS_mac.json`, and with `MILBACK_TRACE=<dir>` (or `=1`
//! for `results/traces`) each policy's densest campaign is captured as
//! structured-trace JSONL plus one combined Chrome `trace_event` JSON,
//! loadable at <https://ui.perfetto.dev>.
//!
//! Run with: `cargo run --release -p milback-bench --bin mac_compare`

use milback_bench::experiments::{extension_mac_compare_instrumented, MAC_POLICY_NAMES};
use milback_bench::hostinfo::HostInfo;
use milback_bench::runner::RunnerConfig;
use milback_bench::{log_info, log_warn, metrics_io, reduced_mode, results_dir, Report, Series};
use milback_core::telemetry::{chrome_trace, DEFAULT_TRACE_CAPACITY};
use std::path::PathBuf;

/// Where `MILBACK_TRACE` asks traces to go: `None` when unset/empty,
/// `results/traces` for `1`, else the given directory.
fn trace_dir() -> Option<PathBuf> {
    match std::env::var("MILBACK_TRACE") {
        Ok(v) if v == "1" => Some(results_dir().join("traces")),
        Ok(v) if !v.is_empty() && v != "0" => Some(PathBuf::from(v)),
        _ => None,
    }
}

fn main() {
    // Named `main`/`io` so `all_experiments` can derive its per-stage
    // table (setup = main - run_trials - io) from the exported span file.
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let node_counts: &[usize] = if reduced {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let frames = if reduced { 6 } else { 24 };
    let slots = 8;
    let payload_bytes = 16;
    let cfg = RunnerConfig::from_env();
    let tracing = trace_dir();
    let run = extension_mac_compare_instrumented(
        &MAC_POLICY_NAMES,
        node_counts,
        frames,
        payload_bytes,
        slots,
        0xE4,
        &cfg,
        tracing.as_ref().map(|_| DEFAULT_TRACE_CAPACITY),
    );
    let batch = &run.batch;

    let io_span = milback_bench::spans::span("io");
    let mut report = Report::new(
        "Extension mac_compare",
        "MAC policies on the shared sector cell: delivery, energy, goodput vs node count",
        "nodes",
        "delivery rate / energy per delivered packet (mJ) / per-node goodput (kbps)",
    );
    let mk = |metric: &str| -> Vec<Series> {
        MAC_POLICY_NAMES
            .iter()
            .map(|p| Series::new(format!("{metric} {p}")))
            .collect()
    };
    let mut delivery = mk("delivery");
    let mut energy = mk("energy_mj");
    let mut goodput = mk("goodput_kbps");
    for p in batch.oks() {
        let k = MAC_POLICY_NAMES
            .iter()
            .position(|&n| n == p.policy)
            .expect("policy came from MAC_POLICY_NAMES");
        delivery[k].push(p.nodes as f64, p.delivery_rate);
        // An undelivered campaign has no energy-per-packet figure: the
        // cell stays empty rather than carrying an `inf` token.
        energy[k].push_opt(p.nodes as f64, p.energy_per_packet_j.map(|e| e * 1e3));
        goodput[k].push(p.nodes as f64, p.per_node_goodput_bps / 1e3);
    }
    for s in delivery.into_iter().chain(energy).chain(goodput) {
        report.add_series(s);
    }

    let densest = *node_counts.last().expect("non-empty grid");
    let at_densest = |name: &str| batch.oks().find(|p| p.policy == name && p.nodes == densest);
    if let (Some(aloha), Some(polling), Some(sdm)) = (
        at_densest("aloha"),
        at_densest("polling"),
        at_densest("sdm"),
    ) {
        report.note(format!(
            "at {densest} nodes: delivery aloha {:.3} vs polling {:.3} vs sdm-aware {:.3} — \
             contention-aware scheduling recovers what hashed contention loses",
            aloha.delivery_rate, polling.delivery_rate, sdm.delivery_rate
        ));
    }
    report.note(format!(
        "{} slots/frame, {} frames, {}-byte payloads, SDM threshold 20 dB, backoff cap 2^5; \
         {}; {} worker threads",
        slots,
        frames,
        payload_bytes,
        batch.summary(),
        cfg.threads
    ));
    report.emit_respecting_reduced();

    write_metrics(&run, node_counts, frames, slots, payload_bytes, reduced);
    if let Some(dir) = tracing {
        write_traces(&run, &dir, densest);
    }
    drop(io_span);
    drop(main_span);
    milback_bench::spans::export_if_requested();
}

/// Writes `results/METRICS_mac.json` from the per-policy registries. In a
/// telemetry-off build the registries are empty and nothing is written —
/// the artifact never silently claims an instrumented campaign that did
/// not happen.
fn write_metrics(
    run: &milback_bench::experiments::InstrumentedMacCompare,
    node_counts: &[usize],
    frames: usize,
    slots: usize,
    payload_bytes: usize,
    reduced: bool,
) {
    if run.policies.iter().all(|p| p.metrics.is_empty()) {
        log_info!("telemetry off: skipping METRICS_mac.json");
        return;
    }
    let node_list = node_counts
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let config = [
        ("reduced", reduced.to_string()),
        ("frames", frames.to_string()),
        ("slots", slots.to_string()),
        ("payload_bytes", payload_bytes.to_string()),
        ("seed", 0xE4u64.to_string()),
        ("node_counts", format!("[{node_list}]")),
    ];
    let policies: Vec<(&str, &milback_core::telemetry::Metrics)> = run
        .policies
        .iter()
        .map(|p| (p.policy, &p.metrics))
        .collect();
    let doc = metrics_io::metrics_mac_json(&HostInfo::capture(), &config, &policies);
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        log_warn!("cannot create {}", dir.display());
        return;
    }
    let path = dir.join("METRICS_mac.json");
    match std::fs::write(&path, &doc) {
        Ok(()) => log_info!("wrote {}", path.display()),
        Err(e) => log_warn!("cannot write {}: {e}", path.display()),
    }
}

/// Dumps each policy's captured trace as JSONL (one file per policy, so
/// `time_ps` stays monotone within a file) plus one combined Chrome
/// `trace_event` JSON with the policies side-by-side as processes.
fn write_traces(
    run: &milback_bench::experiments::InstrumentedMacCompare,
    dir: &std::path::Path,
    densest: usize,
) {
    if std::fs::create_dir_all(dir).is_err() {
        log_warn!("cannot create {}", dir.display());
        return;
    }
    let mut sections = Vec::new();
    for p in &run.policies {
        let Some(buf) = &p.trace else {
            continue;
        };
        let path = dir.join(format!("mac_{}.trace.jsonl", p.policy));
        match std::fs::write(&path, buf.to_jsonl()) {
            Ok(()) => log_info!(
                "wrote {} ({} records, {} dropped)",
                path.display(),
                buf.len(),
                buf.dropped()
            ),
            Err(e) => log_warn!("cannot write {}: {e}", path.display()),
        }
        sections.push((p.policy, buf));
    }
    if sections.is_empty() {
        log_info!("telemetry off: no traces captured");
        return;
    }
    let chrome = chrome_trace(&sections);
    let path = dir.join("mac_compare.trace.json");
    match std::fs::write(&path, &chrome) {
        Ok(()) => {
            println!(
                "trace: {} ({densest}-node frame per policy) — open at https://ui.perfetto.dev",
                path.display()
            );
        }
        Err(e) => log_warn!("cannot write {}: {e}", path.display()),
    }
}
