//! MAC-comparison extension: races the four `MacPolicy` implementations —
//! slotted ALOHA, ALOHA with capped exponential backoff, AP round-robin
//! polling, and SDM-aware slot assignment — over the same ±60°-sector cell
//! as `net_scale`, sweeping the node count.
//!
//! Each (policy, node count) cell is one campaign on the discrete-event
//! engine ([`milback_core::Network::run_mac`]) through the trial-parallel
//! runner, so the CSV is bit-identical at any thread count; the root seed
//! and slot seeds match `net_scale`'s, so the ALOHA rows reproduce that
//! baseline curve exactly.
//!
//! Run with: `cargo run --release -p milback-bench --bin mac_compare`

use milback_bench::experiments::{extension_mac_compare, MAC_POLICY_NAMES};
use milback_bench::runner::RunnerConfig;
use milback_bench::{reduced_mode, Report, Series};

fn main() {
    let reduced = reduced_mode();
    let node_counts: &[usize] = if reduced {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let frames = if reduced { 6 } else { 24 };
    let slots = 8;
    let payload_bytes = 16;
    let cfg = RunnerConfig::from_env();
    let batch = extension_mac_compare(
        &MAC_POLICY_NAMES,
        node_counts,
        frames,
        payload_bytes,
        slots,
        0xE4,
        &cfg,
    );

    let mut report = Report::new(
        "Extension mac_compare",
        "MAC policies on the shared sector cell: delivery, energy, goodput vs node count",
        "nodes",
        "delivery rate / energy per delivered packet (mJ) / per-node goodput (kbps)",
    );
    let mk = |metric: &str| -> Vec<Series> {
        MAC_POLICY_NAMES
            .iter()
            .map(|p| Series::new(format!("{metric} {p}")))
            .collect()
    };
    let mut delivery = mk("delivery");
    let mut energy = mk("energy_mj");
    let mut goodput = mk("goodput_kbps");
    for p in batch.oks() {
        let k = MAC_POLICY_NAMES
            .iter()
            .position(|&n| n == p.policy)
            .expect("policy came from MAC_POLICY_NAMES");
        delivery[k].push(p.nodes as f64, p.delivery_rate);
        // An undelivered campaign has no energy-per-packet figure: the
        // cell stays empty rather than carrying an `inf` token.
        energy[k].push_opt(p.nodes as f64, p.energy_per_packet_j.map(|e| e * 1e3));
        goodput[k].push(p.nodes as f64, p.per_node_goodput_bps / 1e3);
    }
    for s in delivery.into_iter().chain(energy).chain(goodput) {
        report.add_series(s);
    }

    let densest = *node_counts.last().expect("non-empty grid");
    let at_densest = |name: &str| batch.oks().find(|p| p.policy == name && p.nodes == densest);
    if let (Some(aloha), Some(polling), Some(sdm)) = (
        at_densest("aloha"),
        at_densest("polling"),
        at_densest("sdm"),
    ) {
        report.note(format!(
            "at {densest} nodes: delivery aloha {:.3} vs polling {:.3} vs sdm-aware {:.3} — \
             contention-aware scheduling recovers what hashed contention loses",
            aloha.delivery_rate, polling.delivery_rate, sdm.delivery_rate
        ));
    }
    report.note(format!(
        "{} slots/frame, {} frames, {}-byte payloads, SDM threshold 20 dB, backoff cap 2^5; \
         {}; {} worker threads",
        slots,
        frames,
        payload_bytes,
        batch.summary(),
        cfg.threads
    ));
    report.emit_respecting_reduced();
}
