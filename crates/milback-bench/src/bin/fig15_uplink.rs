//! Figure 15 — Uplink performance.
//!
//! SNR of the node's backscatter at the AP vs distance, for 10 Mbps
//! (Fig 15a) and 40 Mbps (Fig 15b), with the BER each SNR implies and
//! Monte-Carlo verification at selected distances. The Monte-Carlo cases
//! run through the trial-parallel runner (root seed 0xF15, one
//! deterministic stream per case); failed transfers are reported.
//!
//! Paper anchors: very low BER at 8 m for 10 Mbps (≈2e-4 annotation) and
//! at 6 m for 40 Mbps (≈8e-4); 40 Mbps costs 6 dB of SNR (4× bandwidth);
//! uplink SNR falls at 12 dB per distance doubling (two-way path loss).

use milback_bench::experiments::fig15_spot_checks;
use milback_bench::runner::RunnerConfig;
use milback_bench::{linspace, reduced_mode, Report, Series};
use milback_core::{LinkSimulator, Scene, SystemConfig};

fn run_rate(label: &str, bit_rate: f64, distances: &[f64]) -> (Series, Series) {
    let mut snr = Series::new(format!("SNR {label} (dB)"));
    let mut ber = Series::new(format!("log10 BER {label}"));
    for &d in distances {
        let mut config = SystemConfig::milback_default();
        config.uplink_symbol_rate_hz = bit_rate / 2.0;
        let sim = LinkSimulator::new(config, Scene::single_node(d, 12f64.to_radians())).unwrap();
        let s = sim.uplink_analytic_snr_db().unwrap();
        snr.push(d, s);
        ber.push(d, LinkSimulator::uplink_ber_from_snr(s).max(1e-300).log10());
    }
    (snr, ber)
}

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let distances = if reduced {
        linspace(0.5, 10.0, 6)
    } else {
        linspace(0.5, 10.0, 20)
    };
    let (snr10, ber10) = run_rate("10 Mbps", 10e6, &distances);
    let (snr40, ber40) = run_rate("40 Mbps", 40e6, &distances);

    // Monte-Carlo verification with real payloads.
    let cfg = RunnerConfig::from_env();
    let cases = [(10e6, 8.0), (40e6, 6.0), (40e6, 8.0)];
    let payload_bytes = if reduced { 5_000 } else { 50_000 };
    let spots = fig15_spot_checks(&cases, payload_bytes, 0xF15, &cfg);

    let at = |s: &Series, x: f64| {
        s.points
            .iter()
            .min_by(|a, b| (a.0 - x).abs().partial_cmp(&(b.0 - x).abs()).unwrap())
            .and_then(|p| p.1)
            .unwrap()
    };
    let a8 = at(&snr10, 8.0);
    let a6 = at(&snr40, 6.0);
    let gap = at(&snr10, 5.0) - at(&snr40, 5.0);

    let mut report = Report::new(
        "Figure 15",
        "Uplink SNR and BER vs distance, 10 Mbps (a) and 40 Mbps (b)",
        "distance (m)",
        "SNR (dB) / log10 BER",
    );
    report.add_series(snr10);
    report.add_series(ber10);
    report.add_series(snr40);
    report.add_series(ber40);
    report.note(format!(
        "10 Mbps at 8 m: {a8:.1} dB → BER {:.1e} (paper annotation ≈2e-4)",
        LinkSimulator::uplink_ber_from_snr(a8)
    ));
    report.note(format!(
        "40 Mbps at 6 m: {a6:.1} dB → BER {:.1e} (paper annotation ≈8e-4)",
        LinkSimulator::uplink_ber_from_snr(a6)
    ));
    report.note(format!(
        "rate penalty 10→40 Mbps: {gap:.1} dB (theory: 6.0 dB — 4× noise bandwidth, §9.5)"
    ));
    report.note("uplink SNR falls ~12 dB per distance doubling (signal attenuates through the channel twice, §9.5)");
    for s in spots.oks() {
        report.note(format!(
            "{} Mbps at {} m: measured SNR {:.1} dB, measured BER {:.1e} (analytic {:.1e})",
            s.bit_rate_bps / 1e6,
            s.distance_m,
            s.snr_db,
            s.ber,
            LinkSimulator::uplink_ber_from_snr(s.analytic_snr_db)
        ));
    }
    for (i, e) in spots.failures() {
        report.note(format!("spot check case {i} FAILED: {e}"));
    }
    report.note(format!(
        "spot checks: {}; {} worker threads, deterministic per-trial streams",
        spots.summary(),
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    drop(main_span);
    milback_bench::spans::export_if_requested();
}
