//! Figure 13a — Orientation estimation at the node.
//!
//! The node sits 2 m from the AP; the AP transmits Field-1 triangular
//! chirps while both node ports absorb; the MCU samples both detectors at
//! 1 MS/s, measures the peak separation per port and averages the two
//! estimates. 25 trials per orientation.
//!
//! Paper anchor: mean error < 3° at every orientation.

use milback_bench::{Report, Series};
use milback_core::{LocalizationPipeline, Scene, SystemConfig};
use mmwave_sigproc::random::GaussianSource;
use mmwave_sigproc::stats::ErrorSummary;

fn main() {
    let orientations: Vec<f64> = vec![-20.0, -15.0, -10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0];
    let trials = 25;
    let mut rng = GaussianSource::new(0xF13A);

    let mut mean_series = Series::new("mean error (deg)");
    let mut std_series = Series::new("std dev (deg)");
    let mut worst = 0.0f64;

    for &deg in &orientations {
        // `orientation_rad` rotates the board; the sensed incidence is its
        // negative — sweep the board and compare in incidence space.
        let pipeline = LocalizationPipeline::new(
            SystemConfig::milback_default(),
            Scene::indoor(2.0, (-deg).to_radians()),
        )
        .unwrap();
        let truth = pipeline.scene.ground_truth(0).incidence_rad.to_degrees();
        let mut errors = Vec::with_capacity(trials);
        for _ in 0..trials {
            match pipeline.orient_at_node(&mut rng) {
                Ok(est) => errors.push((est.to_degrees() - truth).abs()),
                Err(e) => eprintln!("  trial failed at {deg}°: {e}"),
            }
        }
        let s = ErrorSummary::from_abs_errors(&errors);
        mean_series.push(deg, s.mean);
        std_series.push(deg, s.std_dev);
        worst = worst.max(s.mean);
    }

    let mut report = Report::new(
        "Figure 13a",
        "Node-side orientation error vs true orientation (25 trials, 2 m, 1 MS/s MCU)",
        "orientation (deg)",
        "error (deg)",
    );
    report.add_series(mean_series);
    report.add_series(std_series);
    report.note(format!(
        "worst mean error {worst:.2}° (paper: always < 3°, comparable to smartphone IMUs [25])"
    ));
    report.emit();
}
