//! Figure 13a — Orientation estimation at the node.
//!
//! The node sits 2 m from the AP; the AP transmits Field-1 triangular
//! chirps while both node ports absorb; the MCU samples both detectors at
//! 1 MS/s, measures the peak separation per port and averages the two
//! estimates. 25 trials per orientation, each with its own deterministic
//! RNG stream via the trial-parallel runner (root seed 0xF13A).
//!
//! Paper anchor: mean error < 3° at every orientation.

use milback_bench::experiments::{fig13_orientation, OrientSide};
use milback_bench::runner::RunnerConfig;
use milback_bench::{reduced_mode, Report, Series};
use mmwave_sigproc::stats::ErrorSummary;

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let orientations: Vec<f64> = if reduced {
        vec![-15.0, 0.0, 15.0]
    } else {
        vec![-20.0, -15.0, -10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0]
    };
    let trials = if reduced { 5 } else { 25 };
    let cfg = RunnerConfig::from_env();

    let results = fig13_orientation(&orientations, trials, 0xF13A, &cfg, OrientSide::Node);

    let mut mean_series = Series::new("mean error (deg)");
    let mut std_series = Series::new("std dev (deg)");
    let mut worst = 0.0f64;
    let mut failed = 0;
    for r in &results {
        let s = ErrorSummary::from_abs_errors(&r.abs_errors_deg);
        mean_series.push(r.orientation_deg, s.mean);
        std_series.push(r.orientation_deg, s.std_dev);
        worst = worst.max(s.mean);
        failed += r.failed;
    }
    let total = orientations.len() * trials;

    let mut report = Report::new(
        "Figure 13a",
        "Node-side orientation error vs true orientation (25 trials, 2 m, 1 MS/s MCU)",
        "orientation (deg)",
        "error (deg)",
    );
    report.add_series(mean_series);
    report.add_series(std_series);
    report.note(format!(
        "worst mean error {worst:.2}° (paper: always < 3°, comparable to smartphone IMUs [25])"
    ));
    report.note(format!(
        "{} ok / {failed} failed ({total} trials); {} worker threads, deterministic per-trial streams",
        total - failed,
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    drop(main_span);
    milback_bench::spans::export_if_requested();
}
