//! City-scale network sweep: sharded slotted-ALOHA campaigns from 10³ to
//! 10⁵ nodes.
//!
//! Each node count shards the ±60° sector scene into fixed-size spatial
//! cells and runs one deterministic engine campaign per cell
//! ([`milback_core::Network::run_sharded_mac`]), streaming every node
//! straight into a [`milback_core::CampaignAggregate`] — so the campaign's
//! report memory is O(cells + histogram buckets) no matter how many nodes
//! run, and the cells fan out over `MILBACK_THREADS` workers without
//! changing a single output bit. The CSV's throughput column
//! (`nodes_per_sec`) is wall-clock and varies run to run; every simulation
//! column is deterministic.
//!
//! Run with: `cargo run --release -p milback-bench --bin net_scale_city`

use milback_bench::experiments::{extension_net_scale_city, sector_campaign, NetScaleCityPoint};
use milback_bench::runner::RunnerConfig;
use milback_bench::{reduced_mode, results_dir, Report, Series};
use milback_core::{ApServiceConfig, OverflowPolicy, RelayConfig};

/// The campaign shape shared by the full-scale anchor and the reduced CI
/// run: 8-slot frames over 32-node cells keeps every cell contended (slot
/// sharing and SDM erosion both bite) while singleton slots still deliver.
const CELL_SIZE: usize = 32;
const SLOTS: usize = 8;
const FRAMES: usize = 4;
const PAYLOAD_BYTES: usize = 16;
const ROOT_SEED: u64 = 0xC17E;

/// Each cell AP's service pipeline: a Capture stage two slot widths deep
/// behind a 4-deep queue, spilling with `Defer`. Defer keeps the queue
/// FIFO, so every simulation column below is bit-identical to the old
/// instantaneous campaign — the config only lights up the
/// `offered`/`served`/`overflow` columns with a real backlog.
const SERVICE_QUEUE: usize = 4;
fn service(slot_ps: u64) -> ApServiceConfig {
    ApServiceConfig::instantaneous()
        .with_stage_latencies(2 * slot_ps, 0, 0)
        .with_queue(SERVICE_QUEUE, OverflowPolicy::Defer)
}

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let node_counts: &[usize] = if reduced {
        // The CI shape: 4 cells × a few hundred nodes, seconds not minutes.
        &[128, 1024]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let cfg = RunnerConfig::from_env();
    // The slot plan is a pure function of the campaign shape; a 1-node
    // probe campaign yields the slot width the service pipeline is sized
    // against.
    let slot_ps = match sector_campaign(1, PAYLOAD_BYTES, SLOTS, ROOT_SEED) {
        Ok(c) => c.plan.slot_ps,
        Err(e) => {
            eprintln!("net_scale_city failed: {e}");
            std::process::exit(1);
        }
    };
    let points = match extension_net_scale_city(
        node_counts,
        CELL_SIZE,
        FRAMES,
        PAYLOAD_BYTES,
        SLOTS,
        ROOT_SEED,
        &service(slot_ps),
        // The city anchor stays a full-coverage campaign: relaying off
        // keeps every pre-relay column bit-identical, and the new
        // gap/relay columns report zeros.
        &RelayConfig::disabled(),
        &cfg,
    ) {
        Ok(points) => points,
        Err(e) => {
            eprintln!("net_scale_city failed: {e}");
            std::process::exit(1);
        }
    };

    let io_span = milback_bench::spans::span("io");
    let mut report = Report::new(
        "Extension net_scale_city",
        "sharded slotted-ALOHA campaigns: cells, delivery, throughput vs node count",
        "nodes",
        "cells / delivery rate / knodes-per-sec",
    );
    let mut cells = Series::new("cells");
    let mut delivery = Series::new("delivery rate");
    let mut throughput = Series::new("knodes/s (wall)");
    for p in &points {
        cells.push(p.nodes as f64, p.cells as f64);
        delivery.push_opt(p.nodes as f64, p.delivery_rate);
        throughput.push(p.nodes as f64, p.nodes_per_sec / 1e3);
    }
    report.add_series(cells);
    report.add_series(delivery);
    report.add_series(throughput);
    if let Some(p) = points.last() {
        report.note(format!(
            "{} nodes across {} cells of {} finished in {:.2} s ({:.0} nodes/s) on {} thread(s); \
             report memory stayed at {} histogram buckets + counters, never a per-node Vec",
            p.nodes,
            p.cells,
            CELL_SIZE,
            p.wall_s,
            p.nodes_per_sec,
            p.threads,
            bucket_footprint(),
        ));
    }
    report.note(format!(
        "{SLOTS} slots/frame, {FRAMES} frames, {PAYLOAD_BYTES}-byte payloads, SDM threshold 20 dB, \
         cell seeds from SplitMix64 over seed {ROOT_SEED:#x}"
    ));
    report.note(format!(
        "each cell AP serves grants through the staged Capture→Plan→Transmit pipeline \
         (capture 2 slot widths, queue {SERVICE_QUEUE}, Defer): offered/served/overflow carry \
         the backlog, and Defer's FIFO admission keeps every other column bit-identical to \
         the instantaneous campaign"
    ));
    report.note(
        "every shard cell's packet ledger is conservation-audited (offered == delivered + Σ drops) \
         before it merges; the lifecycle CSV columns carry the merged ledger and its slot-wait \
         percentiles, bit-identical at any MILBACK_THREADS"
            .to_string(),
    );
    print!("{}", report.render());

    // The wide per-point schema goes out as a hand-rolled CSV (the Report
    // grid only carries the headline series). Reduced runs never touch the
    // full-scale anchor.
    if !reduced {
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join("extension_net_scale_city.csv");
            match std::fs::write(&path, to_csv(&points)) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    }
    drop(io_span);
    drop(main_span);
    milback_bench::spans::export_if_requested();
}

/// The streaming aggregate's bounded report footprint, in histogram
/// buckets — printed so the scaling claim is visible next to the numbers.
fn bucket_footprint() -> usize {
    milback_core::CampaignAggregate::new().bucket_footprint()
}

/// The full sweep schema, one row per node count. Undefined values
/// (nothing delivered) are empty cells, never NaN/inf tokens.
fn to_csv(points: &[NetScaleCityPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "nodes,cells,threads,frames,attempts,delivered,collisions,offered,served,overflow,\
         delivery_rate,energy_per_node_j,mean_snr_db,nodes_per_sec,wall_s,gap_nodes,relayed,\
         mean_relay_hops,offered_packets,dropped_packets,slot_wait_p50_us,slot_wait_p95_us,\
         slot_wait_p99_us\n",
    );
    for p in points {
        let opt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.nodes,
            p.cells,
            p.threads,
            p.frames,
            p.attempts,
            p.delivered,
            p.collisions,
            p.offered,
            p.served,
            p.overflow,
            opt(p.delivery_rate),
            opt(p.energy_per_node_j),
            opt(p.mean_snr_db),
            p.nodes_per_sec,
            p.wall_s,
            p.gap_nodes,
            p.relayed,
            opt(p.mean_relay_hops),
            p.offered_packets,
            p.dropped_packets,
            opt(p.slot_wait_p50_us),
            opt(p.slot_wait_p95_us),
            opt(p.slot_wait_p99_us),
        );
    }
    out
}
