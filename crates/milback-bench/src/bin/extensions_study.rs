//! Extension studies beyond the paper's evaluation:
//!
//! * **Dense OAQFM** (§9.4 future work): amplitude levels per tone vs
//!   achievable rate across distance, with the adaptive-density rule.
//! * **Coded uplink**: Hamming(7,4)+interleaving vs raw BER across range.
//! * **Tracking**: Kalman-filtered fixes vs raw localization for a moving
//!   node.
//!
//! The stochastic studies (E2, E3) run through the trial-parallel runner:
//! every distance/step is an independent trial with its own deterministic
//! RNG stream. E3's Kalman fold stays serial in this binary — only the
//! per-step localization fixes are produced in parallel.
//!
//! Run with: `cargo run --release -p milback-bench --bin extensions_study`

use milback_bench::experiments::{extension_coded_uplink, extension_tracking_fixes};
use milback_bench::runner::RunnerConfig;
use milback_bench::{linspace, reduced_mode, Report, Series};
use milback_core::dense::DenseOaqfm;
use milback_core::tracking::Tracker;
use milback_core::{LinkSimulator, Scene, SystemConfig};

fn main() {
    let main_span = milback_bench::spans::span("main");
    dense_oaqfm_vs_distance();
    println!();
    coded_uplink_vs_distance();
    println!();
    tracking_vs_raw();
    drop(main_span);
    milback_bench::spans::export_if_requested();
}

/// Dense OAQFM: for each distance, the downlink SINR picks the densest
/// constellation under a raw 1e-3 BER target (the FEC layer cleans the
/// residue); report the resulting rate.
fn dense_oaqfm_vs_distance() {
    let mut report = Report::new(
        "Extension E1",
        "adaptive dense OAQFM: rate vs distance at raw BER ≤ 1e-3 (18 Msym/s, FEC underneath)",
        "distance (m)",
        "rate (Mbps) / levels",
    );
    let mut rate_series = Series::new("adaptive rate (Mbps)");
    let mut level_series = Series::new("levels per tone");
    let mut plain_series = Series::new("plain OAQFM (Mbps)");
    let grid = if reduced_mode() {
        linspace(0.5, 12.0, 6)
    } else {
        linspace(0.5, 12.0, 24)
    };
    for d in grid {
        let sim = LinkSimulator::new(
            SystemConfig::milback_default(),
            Scene::single_node(d, 12f64.to_radians()),
        )
        .unwrap();
        let carriers = sim.plan_carriers(None).unwrap();
        let (f_a, f_b) = match carriers {
            milback_ap::waveform::CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
            milback_ap::waveform::CarrierSet::SingleToneOok { f } => (f, f),
        };
        let psi = sim.scene.ground_truth(0).incidence_rad;
        let (ra, rb) = sim.downlink_sinr_breakdown(f_a, f_b, psi);
        let sinr = ra.sinr_db().min(rb.sinr_db());
        let scheme = DenseOaqfm::densest_for(sinr, 1e-3, 16);
        rate_series.push(d, scheme.throughput_bps(18e6) / 1e6);
        level_series.push(d, scheme.levels as f64);
        plain_series.push(d, DenseOaqfm::new(2).throughput_bps(18e6) / 1e6);
    }
    let max_rate = rate_series
        .points
        .iter()
        .filter_map(|p| p.1)
        .fold(0.0, f64::max);
    let dense_region: Vec<f64> = rate_series
        .points
        .iter()
        .filter(|p| p.1.is_some_and(|y| y > 36.0))
        .map(|p| p.0)
        .collect();
    report.add_series(rate_series);
    report.add_series(level_series);
    report.add_series(plain_series);
    if let (Some(&lo), Some(&hi)) = (dense_region.first(), dense_region.last()) {
        report.note(format!(
            "dense constellations run from {lo:.1} m to {hi:.1} m (peak {max_rate:.0} Mbps); beyond that the link falls back to plain OAQFM's 36 Mbps"
        ));
    } else {
        report.note("the SINR ceiling kept the link at plain OAQFM everywhere in this sweep");
    }
    report.note("§9.4: \"another option is to define denser OAQFM modulation schemes … considering different amplitudes for each tone\"");
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
}

/// Coded uplink: residual byte errors with and without FEC across range.
fn coded_uplink_vs_distance() {
    let mut report = Report::new(
        "Extension E2",
        "Hamming(7,4)+interleaving on the uplink: residual BER vs distance (40 Mbps)",
        "distance (m)",
        "log10 residual BER",
    );
    let mut raw_series = Series::new("uncoded log10 BER");
    let mut coded_series = Series::new("coded log10 BER (effective 22.9 Mbps)");
    let reduced = reduced_mode();
    let distances: &[f64] = if reduced {
        &[6.0, 10.0]
    } else {
        &[6.0, 7.0, 8.0, 9.0, 10.0]
    };
    let payload_bytes = if reduced { 2048 } else { 8192 };
    let cfg = RunnerConfig::from_env();
    let batch = extension_coded_uplink(distances, payload_bytes, 0xEC2, &cfg);
    for p in batch.oks() {
        raw_series.push(p.distance_m, p.raw_log10_ber);
        coded_series.push(p.distance_m, p.coded_log10_ber);
    }
    report.add_series(raw_series);
    report.add_series(coded_series);
    report.note(
        "FEC buys ~1.5–3 orders of magnitude of residual BER at the range edge for a 4/7 rate cost",
    );
    report.note(format!(
        "{}; {} worker threads",
        batch.summary(),
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
}

/// Tracking: RMS error of raw fixes vs Kalman-filtered track for a node
/// walking across the cell. The fixes come from the runner (one
/// deterministic stream per step); the Kalman fold over them is serial.
fn tracking_vs_raw() {
    let mut report = Report::new(
        "Extension E3",
        "Kalman tracking vs raw fixes for a walking node (0.5 m/s, 10 fixes/s)",
        "time (s)",
        "position error (cm)",
    );
    let config = SystemConfig::milback_default();
    let mut tracker = Tracker::new().with_noise(1.0, 0.03);
    let mut raw_series = Series::new("raw fix error (cm)");
    let mut track_series = Series::new("tracked error (cm)");
    let dt = 0.1;
    let steps = if reduced_mode() { 10 } else { 30 };
    let cfg = RunnerConfig::from_env();
    let batch = extension_tracking_fixes(steps, dt, 0xEC3, &cfg, &config);
    let mut raw_sq = 0.0;
    let mut trk_sq = 0.0;
    let mut first = true;
    for (i, r) in batch.results.iter().enumerate() {
        let Ok(step) = r else { continue };
        let s = tracker.update(&step.fix, if first { 0.0 } else { dt });
        first = false;
        let raw_err = step.fix.position.distance_to(step.truth);
        let trk_err = s.position.distance_to(step.truth);
        raw_series.push(step.t_s, raw_err * 100.0);
        track_series.push(step.t_s, trk_err * 100.0);
        if i >= 5 {
            raw_sq += raw_err * raw_err;
            trk_sq += trk_err * trk_err;
        }
    }
    report.add_series(raw_series);
    report.add_series(track_series);
    report.note(format!(
        "post-convergence RMS: raw {:.1} cm vs tracked {:.1} cm",
        (raw_sq / (steps - 5) as f64).sqrt() * 100.0,
        (trk_sq / (steps - 5) as f64).sqrt() * 100.0
    ));
    report.note(format!(
        "{}; {} worker threads",
        batch.summary(),
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
}
