//! Figure 12b — Angle (AoA) accuracy CDF.
//!
//! The node is placed at several azimuths and distances; each trial runs
//! the full five-chirp localization and compares the estimated angle with
//! the protractor ground truth. The paper reports median 1.1° and 90th
//! percentile 2.5°.

use milback_bench::{Report, Series};
use milback_core::{LocalizationPipeline, Scene, SystemConfig};
use mmwave_sigproc::random::GaussianSource;
use mmwave_sigproc::stats::{empirical_cdf, median, percentile};

fn main() {
    let mut rng = GaussianSource::new(0xF12B);
    let mut errors_deg: Vec<f64> = Vec::new();

    // Sweep azimuths and distances like the paper's placements.
    for &az_deg in &[-20.0f64, -10.0, 0.0, 8.0, 15.0] {
        for &dist in &[2.0, 4.0, 6.0] {
            let scene = Scene {
                ap: mmwave_rf::channel::ApFrontend::milback_default(),
                nodes: vec![],
                clutter: Scene::indoor(dist, 0.0).clutter,
            }
            .with_node_at(dist, az_deg.to_radians(), 12f64.to_radians());
            let pipeline =
                LocalizationPipeline::new(SystemConfig::milback_default(), scene).unwrap();
            for _ in 0..8 {
                match pipeline.localize(&mut rng) {
                    Ok(fix) => {
                        errors_deg.push((fix.angle_rad.to_degrees() - az_deg).abs());
                    }
                    Err(e) => eprintln!("  trial failed at az {az_deg}°, {dist} m: {e}"),
                }
            }
        }
    }

    let cdf = empirical_cdf(&errors_deg);
    let mut report = Report::new(
        "Figure 12b",
        "CDF of angle estimation error (two-antenna phase comparison)",
        "angle error (deg)",
        "CDF",
    );
    let mut s = Series::new("empirical CDF");
    for (v, f) in &cdf {
        s.push(*v, *f);
    }
    report.add_series(s);
    let med = median(&errors_deg);
    let p90 = percentile(&errors_deg, 90.0);
    report.note(format!(
        "median {med:.2}° (paper: 1.1°), 90th percentile {p90:.2}° (paper: 2.5°), {} trials",
        errors_deg.len()
    ));
    report.emit();
}
