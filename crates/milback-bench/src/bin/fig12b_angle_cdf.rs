//! Figure 12b — Angle (AoA) accuracy CDF.
//!
//! The node is placed at several azimuths and distances; each trial runs
//! the full five-chirp localization and compares the estimated angle with
//! the protractor ground truth. The paper reports median 1.1° and 90th
//! percentile 2.5°.
//!
//! Historically this binary threaded ONE shared RNG through the nested
//! placement loops, so adding or reordering a placement silently reshuffled
//! every later trial's noise. Trials now run through the deterministic
//! trial-parallel runner: trial `i`'s stream depends only on `(0xF12B, i)`,
//! making each placement's statistics independent of the rest of the grid
//! and of the thread count.

use milback_bench::experiments::fig12b_angle_errors;
use milback_bench::runner::RunnerConfig;
use milback_bench::{reduced_mode, Report, Series};
use mmwave_sigproc::stats::{empirical_cdf, median, percentile};

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    // Sweep azimuths and distances like the paper's placements.
    let azimuths: &[f64] = if reduced {
        &[-10.0, 8.0]
    } else {
        &[-20.0, -10.0, 0.0, 8.0, 15.0]
    };
    let dists: &[f64] = if reduced {
        &[2.0, 4.0]
    } else {
        &[2.0, 4.0, 6.0]
    };
    let trials = if reduced { 3 } else { 8 };
    let placements: Vec<(f64, f64)> = azimuths
        .iter()
        .flat_map(|&az| dists.iter().map(move |&d| (az, d)))
        .collect();
    let cfg = RunnerConfig::from_env();

    let results = fig12b_angle_errors(&placements, trials, 0xF12B, &cfg);
    let errors_deg: Vec<f64> = results
        .iter()
        .flat_map(|r| r.errors_deg.iter().copied())
        .collect();
    let failed: usize = results.iter().map(|r| r.failed).sum();

    let cdf = empirical_cdf(&errors_deg);
    let mut report = Report::new(
        "Figure 12b",
        "CDF of angle estimation error (two-antenna phase comparison)",
        "angle error (deg)",
        "CDF",
    );
    let mut s = Series::new("empirical CDF");
    for (v, f) in &cdf {
        s.push(*v, *f);
    }
    report.add_series(s);
    let med = median(&errors_deg);
    let p90 = percentile(&errors_deg, 90.0);
    report.note(format!(
        "median {med:.2}° (paper: 1.1°), 90th percentile {p90:.2}° (paper: 2.5°), {} trials",
        errors_deg.len()
    ));
    report.note(format!(
        "{} ok / {failed} failed ({} trials); {} worker threads, deterministic per-trial streams",
        errors_deg.len(),
        placements.len() * trials,
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    drop(main_span);
    milback_bench::spans::export_if_requested();
}
