//! Figure 12a — Ranging accuracy.
//!
//! The node sits at 1–8 m from the AP in the cluttered indoor scene; for
//! each distance the AP runs the five-chirp FMCW localization 20 times and
//! we report the mean and 90th-percentile absolute range error against the
//! laser-measured ground truth.
//!
//! Trials run through the deterministic trial-parallel runner: each trial
//! has its own RNG stream derived from `(0xF12A, trial index)`, so the
//! numbers are identical at any thread count (`MILBACK_THREADS` to pin).
//!
//! Paper anchors: mean error < 5 cm at 5 m and < 12 cm at 8 m, growing
//! with distance as echo SNR decays.

use milback_bench::experiments::fig12a_ranging;
use milback_bench::runner::RunnerConfig;
use milback_bench::{linspace, reduced_mode, Report, Series};
use mmwave_sigproc::stats::ErrorSummary;

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let distances = if reduced {
        linspace(2.0, 8.0, 3)
    } else {
        linspace(1.0, 8.0, 8)
    };
    let trials = if reduced { 4 } else { 20 };
    let cfg = RunnerConfig::from_env();

    let results = fig12a_ranging(&distances, trials, 0xF12A, &cfg);

    let mut mean_series = Series::new("mean error (cm)");
    let mut p90_series = Series::new("90th pct (cm)");
    let mut failed = 0;
    for r in &results {
        let summary = ErrorSummary::from_abs_errors(&r.abs_errors_m);
        mean_series.push(r.distance_m, summary.mean * 100.0);
        p90_series.push(r.distance_m, summary.p90 * 100.0);
        failed += r.failed;
    }
    let total = distances.len() * trials;

    let mut report = Report::new(
        "Figure 12a",
        "Ranging accuracy vs distance (20 trials/point, indoor clutter)",
        "distance (m)",
        "range error (cm)",
    );
    let mean_at = |s: &Series, x: f64| {
        s.points
            .iter()
            .find(|p| (p.0 - x).abs() < 1e-9)
            .and_then(|p| p.1)
            .unwrap_or(f64::NAN)
    };
    let m5 = mean_at(&mean_series, 5.0);
    let m8 = mean_at(&mean_series, 8.0);
    report.add_series(mean_series);
    report.add_series(p90_series);
    report.note(format!(
        "paper: mean < 5 cm at 5 m → measured {m5:.1} cm; mean < 12 cm at 8 m → measured {m8:.1} cm"
    ));
    report.note(
        "error grows with distance as the modulated echo SNR decays (same trend as the paper)",
    );
    report.note(format!(
        "{} ok / {failed} failed ({total} trials); {} worker threads, deterministic per-trial streams",
        total - failed,
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    drop(main_span);
    milback_bench::spans::export_if_requested();
}
