//! Figure 12a — Ranging accuracy.
//!
//! The node sits at 1–8 m from the AP in the cluttered indoor scene; for
//! each distance the AP runs the five-chirp FMCW localization 20 times and
//! we report the mean and 90th-percentile absolute range error against the
//! laser-measured ground truth.
//!
//! Paper anchors: mean error < 5 cm at 5 m and < 12 cm at 8 m, growing
//! with distance as echo SNR decays.

use milback_bench::{linspace, Report, Series};
use milback_core::{LocalizationPipeline, Scene, SystemConfig};
use mmwave_sigproc::random::GaussianSource;
use mmwave_sigproc::stats::ErrorSummary;

fn main() {
    let distances = linspace(1.0, 8.0, 8);
    let trials = 20;
    let orientation = 12f64.to_radians();

    let mut mean_series = Series::new("mean error (cm)");
    let mut p90_series = Series::new("90th pct (cm)");
    let mut rng = GaussianSource::new(0xF12A);

    for &d in &distances {
        let pipeline = LocalizationPipeline::new(
            SystemConfig::milback_default(),
            Scene::indoor(d, orientation),
        )
        .expect("valid configuration");
        let mut errors = Vec::with_capacity(trials);
        for _ in 0..trials {
            // The experimenter measures ground truth with a laser meter;
            // the estimate is compared against that measurement.
            let measured_gt = pipeline.measured_ground_truth_range(&mut rng);
            match pipeline.localize(&mut rng) {
                Ok(fix) => errors.push((fix.range_m - measured_gt).abs()),
                Err(e) => eprintln!("  trial failed at {d} m: {e}"),
            }
        }
        let summary = ErrorSummary::from_abs_errors(&errors);
        mean_series.push(d, summary.mean * 100.0);
        p90_series.push(d, summary.p90 * 100.0);
    }

    let mut report = Report::new(
        "Figure 12a",
        "Ranging accuracy vs distance (20 trials/point, indoor clutter)",
        "distance (m)",
        "range error (cm)",
    );
    let mean_at = |s: &Series, x: f64| {
        s.points
            .iter()
            .find(|p| (p.0 - x).abs() < 1e-9)
            .map(|p| p.1)
            .unwrap_or(f64::NAN)
    };
    let m5 = mean_at(&mean_series, 5.0);
    let m8 = mean_at(&mean_series, 8.0);
    report.add_series(mean_series);
    report.add_series(p90_series);
    report.note(format!(
        "paper: mean < 5 cm at 5 m → measured {m5:.1} cm; mean < 12 cm at 8 m → measured {m8:.1} cm"
    ));
    report.note("error grows with distance as the modulated echo SNR decays (same trend as the paper)");
    report.emit();
}
