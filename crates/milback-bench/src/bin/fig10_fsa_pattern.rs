//! Figure 10 — Dual-port FSA beam pattern.
//!
//! Gain vs azimuth for seven sample frequencies (26.5–29.5 GHz in 0.5 GHz
//! steps) on both ports — the HFSS plot of the paper, regenerated from the
//! series-fed array-factor model. Each (port, frequency) curve is one
//! trial of the trial-parallel runner (the sweep is deterministic, so the
//! per-trial RNG goes unused), computed through the hoisted
//! [`FsaGainEval`] evaluator — bit-exact with the direct per-call path.
//!
//! Paper anchors: every beam peaks above 10 dBi; beam direction sweeps
//! ≈60° across the band; the two ports' frequency→angle maps are mirrored.

use milback_bench::runner::{run_trials, RunnerConfig};
use milback_bench::{linspace, reduced_mode, Report, Series};
use mmwave_rf::antenna::fsa::{FsaDesign, FsaGainEval, FsaPort};

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let fsa = FsaDesign::milback_default();
    let eval = FsaGainEval::new(&fsa);
    let angles = if reduced {
        linspace(-45.0, 45.0, 31)
    } else {
        linspace(-45.0, 45.0, 91)
    };
    let freqs: Vec<f64> = (0..7).map(|i| 26.5e9 + 0.5e9 * i as f64).collect();
    let cfg = RunnerConfig::from_env();

    // One runner trial per (port, frequency) curve.
    let grid: Vec<(FsaPort, f64)> = [FsaPort::A, FsaPort::B]
        .iter()
        .flat_map(|&p| freqs.iter().map(move |&f| (p, f)))
        .collect();
    let angles_rad: Vec<f64> = angles.iter().map(|d| d.to_radians()).collect();
    let curves: Vec<Series> = run_trials(grid.len(), 0xF10, &cfg, |i, _rng| {
        let (port, f) = grid[i];
        let fe = eval.at_freq(port, f);
        let mut gains = vec![0.0; angles_rad.len()];
        fe.gain_dbi_batch(&angles_rad, &mut gains);
        let mut s = Series::new(format!("{:.1} GHz", f / 1e9));
        for (&deg, &g) in angles.iter().zip(&gains) {
            s.push(deg, g);
        }
        s
    });

    for (pi, port) in [FsaPort::A, FsaPort::B].into_iter().enumerate() {
        let mut report = Report::new(
            format!("Figure 10 port {port:?}"),
            format!("FSA beam pattern, port {port:?} (gain vs azimuth per frequency)"),
            "azimuth (deg)",
            "gain (dBi)",
        );
        for s in &curves[pi * freqs.len()..(pi + 1) * freqs.len()] {
            report.add_series(s.clone());
        }
        // Summary anchors.
        let mut peaks = Vec::new();
        for &f in &freqs {
            let fe = eval.at_freq(port, f);
            let beam = fe.beam_angle_rad().unwrap();
            peaks.push((f, beam.to_degrees(), fe.gain_dbi(beam)));
        }
        let coverage = (peaks.last().unwrap().1 - peaks[0].1).abs();
        let min_peak = peaks.iter().map(|p| p.2).fold(f64::MAX, f64::min);
        report.note(format!(
            "scan coverage across 3 GHz: {coverage:.1}° (paper: >60°); weakest beam peak: {min_peak:.1} dBi (paper: >10 dBi)"
        ));
        for (f, deg, g) in &peaks {
            report.note(format!("{:.1} GHz → {deg:+.1}° at {g:.1} dBi", f / 1e9));
        }
        {
            let _io = milback_bench::spans::span("io");
            report.emit_respecting_reduced();
        }
        println!();
    }

    println!(
        "mirror check: port A @27.5 GHz → {:+.2}°, port B @27.5 GHz → {:+.2}°",
        fsa.beam_angle_rad(FsaPort::A, 27.5e9).unwrap().to_degrees(),
        fsa.beam_angle_rad(FsaPort::B, 27.5e9).unwrap().to_degrees()
    );
    drop(main_span);
    milback_bench::spans::export_if_requested();
}
