//! Figure 10 — Dual-port FSA beam pattern.
//!
//! Gain vs azimuth for seven sample frequencies (26.5–29.5 GHz in 0.5 GHz
//! steps) on both ports — the HFSS plot of the paper, regenerated from the
//! series-fed array-factor model.
//!
//! Paper anchors: every beam peaks above 10 dBi; beam direction sweeps
//! ≈60° across the band; the two ports' frequency→angle maps are mirrored.

use milback_bench::{linspace, Report, Series};
use mmwave_rf::antenna::fsa::{FsaDesign, FsaPort};

fn main() {
    let fsa = FsaDesign::milback_default();
    let angles = linspace(-45.0, 45.0, 91);
    let freqs: Vec<f64> = (0..7).map(|i| 26.5e9 + 0.5e9 * i as f64).collect();

    for port in [FsaPort::A, FsaPort::B] {
        let mut report = Report::new(
            format!("Figure 10 port {port:?}"),
            format!("FSA beam pattern, port {port:?} (gain vs azimuth per frequency)"),
            "azimuth (deg)",
            "gain (dBi)",
        );
        for &f in &freqs {
            let mut s = Series::new(format!("{:.1} GHz", f / 1e9));
            for &deg in &angles {
                s.push(deg, fsa.gain_dbi(port, f, deg.to_radians()));
            }
            report.add_series(s);
        }
        // Summary anchors.
        let mut peaks = Vec::new();
        for &f in &freqs {
            let beam = fsa.beam_angle_rad(port, f).unwrap();
            peaks.push((f, beam.to_degrees(), fsa.gain_dbi(port, f, beam)));
        }
        let coverage = (peaks.last().unwrap().1 - peaks[0].1).abs();
        let min_peak = peaks.iter().map(|p| p.2).fold(f64::MAX, f64::min);
        report.note(format!(
            "scan coverage across 3 GHz: {coverage:.1}° (paper: >60°); weakest beam peak: {min_peak:.1} dBi (paper: >10 dBi)"
        ));
        for (f, deg, g) in &peaks {
            report.note(format!("{:.1} GHz → {deg:+.1}° at {g:.1} dBi", f / 1e9));
        }
        report.emit();
        println!();
    }

    println!(
        "mirror check: port A @27.5 GHz → {:+.2}°, port B @27.5 GHz → {:+.2}°",
        fsa.beam_angle_rad(FsaPort::A, 27.5e9).unwrap().to_degrees(),
        fsa.beam_angle_rad(FsaPort::B, 27.5e9).unwrap().to_degrees()
    );
}
