//! Runs every figure/table binary in sequence — the one-shot full
//! reproduction. Equivalent to invoking each `fig*`/`table*`/`power*`
//! binary yourself; see DESIGN.md's experiment index.
//!
//! Each child inherits the environment, so `MILBACK_THREADS` (worker
//! budget) and `MILBACK_REDUCED` (shrunken grids, no CSV overwrite) apply
//! to every experiment; per-binary wall times are printed at the end.
//!
//! Run with: `cargo run --release -p milback-bench --bin all_experiments`

use std::process::Command;
use std::time::Instant;

fn main() {
    let binaries = [
        "fig10_fsa_pattern",
        "fig11_oaqfm_micro",
        "fig12a_ranging",
        "fig12b_angle_cdf",
        "fig13a_orientation_node",
        "fig13b_orientation_ap",
        "fig14_downlink",
        "fig15_uplink",
        "table1_comparison",
        "power_table",
        "ablations",
        "extensions_study",
    ];
    // Resolve sibling binaries next to this one (same target directory).
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("target dir");
    let mut failures = Vec::new();
    let mut timings: Vec<(&str, f64)> = Vec::new();
    let total = Instant::now();
    for bin in binaries {
        println!("\n================ {bin} ================\n");
        let path = dir.join(bin);
        let t = Instant::now();
        let status = Command::new(&path).status();
        let secs = t.elapsed().as_secs_f64();
        match status {
            Ok(s) if s.success() => timings.push((bin, secs)),
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!(
                    "could not run {bin} ({e}); build it first: cargo build --release -p milback-bench"
                );
                failures.push(bin);
            }
        }
    }
    println!("\nwall time per experiment:");
    for (bin, secs) in &timings {
        println!("  {bin:<26} {secs:>7.2} s");
    }
    println!("  {:<26} {:>7.2} s", "total", total.elapsed().as_secs_f64());
    if failures.is_empty() {
        println!(
            "\nall {} experiments completed; CSVs in results/",
            binaries.len()
        );
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
