//! Runs every figure/table binary in sequence — the one-shot full
//! reproduction. Equivalent to invoking each `fig*`/`table*`/`power*`
//! binary yourself; see DESIGN.md's experiment index.
//!
//! Each child inherits the environment, so `MILBACK_THREADS` (worker
//! budget) and `MILBACK_REDUCED` (shrunken grids, no CSV overwrite) apply
//! to every experiment. Each child also gets a private `MILBACK_SPAN_FILE`
//! to export its profiling spans into, so the timing table at the end
//! breaks every experiment into setup / trials / io wall-clock stages
//! instead of one lump sum.
//!
//! Run with: `cargo run --release -p milback-bench --bin all_experiments`

use milback_bench::log_warn;
use milback_bench::spans::{parse_span_file, SpanStat};
use std::process::Command;
use std::time::Instant;

/// One experiment's timing row: stage totals from its span file, with the
/// parent's own wall measurement as the fallback total.
struct Row {
    bin: &'static str,
    parent_total_s: f64,
    stages: Option<Vec<SpanStat>>,
}

fn stage_s(stages: &[SpanStat], name: &str) -> f64 {
    stages
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.total_ns as f64 / 1e9)
        .unwrap_or(0.0)
}

fn main() {
    let binaries = [
        "fig10_fsa_pattern",
        "fig11_oaqfm_micro",
        "fig12a_ranging",
        "fig12b_angle_cdf",
        "fig13a_orientation_node",
        "fig13b_orientation_ap",
        "fig14_downlink",
        "fig15_uplink",
        "table1_comparison",
        "power_table",
        "ablations",
        "extensions_study",
    ];
    // Resolve sibling binaries next to this one (same target directory).
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("target dir");
    let span_dir = std::env::temp_dir();
    let mut failures = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    let total = Instant::now();
    for bin in binaries {
        println!("\n================ {bin} ================\n");
        let path = dir.join(bin);
        let span_file = span_dir.join(format!("milback_spans_{bin}.tsv"));
        let _ = std::fs::remove_file(&span_file);
        let t = Instant::now();
        let status = Command::new(&path)
            .env("MILBACK_SPAN_FILE", &span_file)
            .status();
        let secs = t.elapsed().as_secs_f64();
        match status {
            Ok(s) if s.success() => {
                let stages = std::fs::read_to_string(&span_file)
                    .ok()
                    .map(|text| parse_span_file(&text));
                rows.push(Row {
                    bin,
                    parent_total_s: secs,
                    stages,
                });
            }
            Ok(s) => {
                log_warn!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                log_warn!(
                    "could not run {bin} ({e}); build it first: cargo build --release -p milback-bench"
                );
                failures.push(bin);
            }
        }
        let _ = std::fs::remove_file(&span_file);
    }
    println!("\nwall time per experiment (s; stages from each child's profiling spans):");
    println!(
        "  {:<26} {:>8} {:>8} {:>8} {:>8}",
        "binary", "setup", "trials", "io", "total"
    );
    for row in &rows {
        match &row.stages {
            Some(stages) if !stages.is_empty() => {
                // `main` spans the whole child run; `run_trials` is the
                // runner's own span; `io` wraps report/CSV emission. What
                // is left of `main` is setup (grids, scenes, planning).
                let main_s = stage_s(stages, "main");
                let total_s = if main_s > 0.0 {
                    main_s
                } else {
                    row.parent_total_s
                };
                let trials_s = stage_s(stages, "run_trials");
                let io_s = stage_s(stages, "io");
                let setup_s = (total_s - trials_s - io_s).max(0.0);
                println!(
                    "  {:<26} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                    row.bin, setup_s, trials_s, io_s, total_s
                );
            }
            _ => {
                // No span file (e.g. a telemetry-off build): only the
                // parent's lump measurement exists.
                println!(
                    "  {:<26} {:>8} {:>8} {:>8} {:>8.2}",
                    row.bin, "-", "-", "-", row.parent_total_s
                );
            }
        }
    }
    println!(
        "  {:<26} {:>8} {:>8} {:>8} {:>8.2}",
        "total",
        "",
        "",
        "",
        total.elapsed().as_secs_f64()
    );
    if failures.is_empty() {
        println!(
            "\nall {} experiments completed; CSVs in results/",
            binaries.len()
        );
    } else {
        log_warn!("failed: {failures:?}");
        std::process::exit(1);
    }
}
