//! Runs every figure/table binary in sequence — the one-shot full
//! reproduction. Equivalent to invoking each `fig*`/`table*`/`power*`
//! binary yourself; see DESIGN.md's experiment index.
//!
//! Run with: `cargo run --release -p milback-bench --bin all_experiments`

use std::process::Command;

fn main() {
    let binaries = [
        "fig10_fsa_pattern",
        "fig11_oaqfm_micro",
        "fig12a_ranging",
        "fig12b_angle_cdf",
        "fig13a_orientation_node",
        "fig13b_orientation_ap",
        "fig14_downlink",
        "fig15_uplink",
        "table1_comparison",
        "power_table",
        "ablations",
        "extensions_study",
    ];
    // Resolve sibling binaries next to this one (same target directory).
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("target dir");
    let mut failures = Vec::new();
    for bin in binaries {
        println!("\n================ {bin} ================\n");
        let path = dir.join(bin);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!(
                    "could not run {bin} ({e}); build it first: cargo build --release -p milback-bench"
                );
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed; CSVs in results/", binaries.len());
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
