//! Ablation studies over the design choices DESIGN.md calls out: each
//! isolates one knob of the system and quantifies what it buys.
//!
//! The Monte-Carlo ablations (A1, A3, A6) run through the trial-parallel
//! runner with deterministic per-trial RNG streams; A2/A4/A5 are
//! deterministic component sweeps with no randomness to schedule.
//!
//! Run with: `cargo run --release -p milback-bench --bin ablations`

use milback_bench::experiments::ablation_impairments;
use milback_bench::runner::{run_fallible, RunnerConfig};
use milback_bench::{reduced_mode, Report, Series};
use milback_core::localization::Impairments;
use milback_core::{LinkSimulator, LocalizationPipeline, Scene, SystemConfig};
use mmwave_rf::antenna::fsa::{FrequencyScanningAntenna, FsaDesign, FsaPort};
use mmwave_rf::antenna::Antenna;
use mmwave_rf::components::{EnvelopeDetector, SpdtSwitch};
use mmwave_sigproc::window::Window;

fn main() {
    let main_span = milback_bench::spans::span("main");
    ablate_subtraction_chirps();
    ablate_fsa_elements();
    ablate_window_choice();
    ablate_detector_speed();
    ablate_switch_speed();
    ablate_impairments();
    drop(main_span);
    milback_bench::spans::export_if_requested();
}

fn trials_per_point(full: usize) -> usize {
    if reduced_mode() {
        (full / 3).max(2)
    } else {
        full
    }
}

/// How many chirps does background subtraction need? The protocol uses 5
/// (§5.1); fewer lose detection margin, more buy diminishing returns.
fn ablate_subtraction_chirps() {
    let mut report = Report::new(
        "Ablation A1",
        "chirp count in background subtraction vs ranging (6 m, indoor)",
        "chirps",
        "mean error (cm) / confidence (dB)",
    );
    let mut err_series = Series::new("mean range error (cm)");
    let mut conf_series = Series::new("peak-to-floor (dB)");
    let chirp_counts = [2usize, 3, 5, 9];
    let trials = trials_per_point(10);
    let cfg = RunnerConfig::from_env();
    let pipeline = LocalizationPipeline::new(
        SystemConfig::milback_default(),
        Scene::indoor(6.0, 12f64.to_radians()),
    )
    .unwrap()
    .with_beat_threads(1);
    let batch = run_fallible(chirp_counts.len() * trials, 0xAB1, &cfg, |i, rng| {
        let n = chirp_counts[i / trials];
        let (rx1, _) = pipeline.capture(
            n,
            milback_core::localization::ToggleSelection { a: true, b: true },
            rng,
        );
        pipeline
            .processor
            .detect_node(&rx1)
            .map(|det| ((det.range_m - 6.0).abs() * 100.0, det.peak_to_floor_db))
            .map_err(|e| e.to_string())
    });
    for (k, chunk) in batch.results.chunks(trials).enumerate() {
        let errs: Vec<f64> = chunk
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|v| v.0))
            .collect();
        let confs: Vec<f64> = chunk
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|v| v.1))
            .collect();
        err_series.push(chirp_counts[k] as f64, mmwave_sigproc::stats::mean(&errs));
        conf_series.push(chirp_counts[k] as f64, mmwave_sigproc::stats::mean(&confs));
    }
    report.add_series(err_series);
    report.add_series(conf_series);
    report.note("5 chirps (the paper's choice) already saturates detection confidence");
    report.note(format!(
        "{}; {} worker threads",
        batch.summary(),
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    println!();
}

/// FSA element count: gain and beamwidth vs the communication range the
/// extra gain buys (§11: "range can be increased by designing a larger FSA").
fn ablate_fsa_elements() {
    let mut report = Report::new(
        "Ablation A2",
        "FSA element count vs gain, beamwidth, and uplink SNR at 8 m",
        "elements",
        "dBi / deg / dB",
    );
    let mut gain_series = Series::new("peak gain (dBi)");
    let mut bw_series = Series::new("beamwidth (deg)");
    let mut snr_series = Series::new("uplink SNR@8m (dB)");
    for &n in &[4usize, 8, 16, 32] {
        let mut design = FsaDesign::for_band(26.5e9, 29.5e9, 30f64.to_radians(), 5, n);
        // Gain grows with aperture: +3 dB per doubling over the 8-element
        // calibration baseline.
        design.peak_gain_dbi = 13.0 + 10.0 * (n as f64 / 8.0).log10();
        let view = FrequencyScanningAntenna {
            design,
            port: FsaPort::A,
        };
        gain_series.push(n as f64, view.peak_gain_dbi(28e9));
        bw_series.push(n as f64, view.beamwidth_rad(28e9).to_degrees());

        let mut config = SystemConfig::milback_default();
        config.node.fsa.design = design;
        config.uplink_symbol_rate_hz = 5e6;
        let sim = LinkSimulator::new(config, Scene::single_node(8.0, 12f64.to_radians())).unwrap();
        snr_series.push(n as f64, sim.uplink_analytic_snr_db().unwrap());
    }
    report.add_series(gain_series);
    report.add_series(bw_series);
    report.add_series(snr_series);
    report.note("doubling the array adds ~3 dB of gain → ~6 dB of two-way uplink SNR, at the cost of halving the beamwidth (tighter orientation tolerance)");
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    println!();
}

/// Range-FFT window: main-lobe width vs sidelobe leakage near strong
/// clutter.
fn ablate_window_choice() {
    let mut report = Report::new(
        "Ablation A3",
        "range-FFT window vs ranging error next to strong clutter (4 m node, 3.5 m shelf)",
        "window id (0=rect 1=hann 2=hamming 3=blackman)",
        "mean error (cm)",
    );
    let mut series = Series::new("mean range error (cm)");
    let windows = [
        Window::Rectangular,
        Window::Hann,
        Window::Hamming,
        Window::Blackman,
    ];
    let trials = trials_per_point(12);
    let cfg = RunnerConfig::from_env();
    let pipelines: Vec<LocalizationPipeline> = windows
        .iter()
        .map(|&w| {
            let mut p = LocalizationPipeline::new(
                SystemConfig::milback_default(),
                Scene::indoor(4.0, 12f64.to_radians()),
            )
            .unwrap()
            .with_beat_threads(1);
            p.processor.window = w;
            p
        })
        .collect();
    let batch = run_fallible(windows.len() * trials, 0xAB3, &cfg, |i, rng| {
        pipelines[i / trials]
            .localize(rng)
            .map(|f| (f.range_m - 4.0).abs() * 100.0)
            .map_err(|e| e.to_string())
    });
    for (k, chunk) in batch.results.chunks(trials).enumerate() {
        let errs: Vec<f64> = chunk
            .iter()
            .filter_map(|r| r.as_ref().ok().copied())
            .collect();
        series.push(k as f64, mmwave_sigproc::stats::mean(&errs));
    }
    report.add_series(series);
    report.note("Hann (the default) balances clutter-sidelobe rejection against main-lobe width");
    report.note(format!(
        "{}; {} worker threads",
        batch.summary(),
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    println!();
}

/// Detector rise time caps the downlink symbol rate (§9.4: 36 Mbps with
/// the ADL6010; a faster detector raises it).
fn ablate_detector_speed() {
    let mut report = Report::new(
        "Ablation A4",
        "envelope-detector rise time vs max downlink rate",
        "rise time (ns)",
        "max bit rate (Mbps)",
    );
    let mut series = Series::new("max downlink (Mbps)");
    for &rise_ns in &[6.0, 12.0, 25.0, 50.0] {
        let mut det = EnvelopeDetector::adl6010();
        det.rise_time_s = rise_ns * 1e-9;
        series.push(rise_ns, det.max_symbol_rate_hz() * 2.0 / 1e6);
    }
    report.add_series(series);
    report.note("the paper's 36 Mbps sits at the ADL6010's ~12 ns class; §9.4: \"one can increase the data-rate further by using faster envelope detector\"");
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    println!();
}

/// Switch toggle rate caps the uplink (§9.5: 160 Mbps with the ADRF5020).
fn ablate_switch_speed() {
    let mut report = Report::new(
        "Ablation A5",
        "switch toggle limit vs max uplink rate and node power",
        "switch limit (MHz)",
        "Mbps / mW",
    );
    let mut rate_series = Series::new("max uplink (Mbps)");
    let mut power_series = Series::new("uplink power (mW)");
    for &mhz in &[40.0, 80.0, 160.0, 320.0] {
        let mut sw = SpdtSwitch::adrf5020();
        sw.max_toggle_hz = mhz * 1e6;
        rate_series.push(mhz, sw.max_toggle_hz * 2.0 / 1e6);
        power_series.push(mhz, sw.power_at_rate_w(sw.max_toggle_hz) * 2.0 * 1e3 + 3.2);
    }
    report.add_series(rate_series);
    report.add_series(power_series);
    report.note("faster switches buy rate linearly but spend linearly more dynamic power — the 0.8 nJ/bit figure is rate-independent");
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    println!();
}

/// Impairment ablation: which systematics cost how much ranging accuracy.
fn ablate_impairments() {
    let mut report = Report::new(
        "Ablation A6",
        "impairment contributions to ranging error at 8 m (10 trials each)",
        "case id (0=none 1=+bounce 2=+flicker/stitch 3=full)",
        "mean error (cm)",
    );
    let mut series = Series::new("mean range error (cm)");
    let cases: Vec<(f64, Impairments)> = vec![
        (0.0, Impairments::none()),
        (1.0, {
            let mut imp = Impairments::none();
            let full = Impairments::milback_default();
            imp.bounce_height_m = full.bounce_height_m;
            imp.bounce_height_jitter_m = full.bounce_height_jitter_m;
            imp.bounce_theta0_rad = full.bounce_theta0_rad;
            imp
        }),
        (2.0, {
            let mut imp = Impairments::none();
            let full = Impairments::milback_default();
            imp.clutter_flicker = full.clutter_flicker;
            imp.stitch_phase_rad = full.stitch_phase_rad;
            imp
        }),
        (3.0, Impairments::milback_default()),
    ];
    let trials = trials_per_point(10);
    let cfg = RunnerConfig::from_env();
    let results = ablation_impairments(&cases, 8.0, trials, 0xAB6, &cfg);
    let mut failed = 0;
    for r in &results {
        series.push(r.case_id, mmwave_sigproc::stats::mean(&r.abs_errors_cm));
        failed += r.failed;
    }
    report.add_series(series);
    report.note("the unresolved ground bounce dominates long-range error; flicker/stitch are second-order; placement error adds a ~1 cm floor everywhere");
    report.note(format!(
        "{} ok / {failed} failed ({} trials); {} worker threads",
        cases.len() * trials - failed,
        cases.len() * trials,
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
}
