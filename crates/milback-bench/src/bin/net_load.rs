//! Offered-vs-served load sweep: pushes the AP service pipeline past its
//! capacity to locate the served-load knee.
//!
//! Every point runs a slotted-ALOHA campaign, so offered load — the
//! occupied slots per frame, each one a grant the AP must serve — grows
//! monotonically with node count, under a staged
//! **Capture → Plan → Transmit** pipeline whose Capture stage takes two
//! slot widths behind a 1-deep queue — service capacity is half the slot
//! rate. The sweep races all three overflow policies over the same grid:
//! `drop` saturates `served` at the knee and sheds the rest, `defer`
//! serves everything late and counts the spill, `degrade` serves
//! everything by skipping SDM arbitration. Both load axes are simulated
//! time, so every CSV column is deterministic.
//!
//! Run with: `cargo run --release -p milback-bench --bin net_load`

use milback_bench::experiments::{extension_net_load, NetLoadPoint, OVERFLOW_POLICY_NAMES};
use milback_bench::runner::RunnerConfig;
use milback_bench::{reduced_mode, results_dir, Report, Series};

/// Campaign shape: 8-slot frames so the knee (capacity = slots/2 grants
/// per frame) sits in the middle of the node sweep, and enough frames for
/// the steady-state backlog to dominate the ramp-up transient.
const SLOTS: usize = 8;
const FRAMES: usize = 64;
const FRAMES_REDUCED: usize = 8;
const PAYLOAD_BYTES: usize = 16;
const QUEUE_CAPACITY: usize = 1;
const ROOT_SEED: u64 = 0x10AD;

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let (node_counts, frames): (&[usize], usize) = if reduced {
        (&[1, 4, 16, 64], FRAMES_REDUCED)
    } else {
        (&[1, 2, 4, 8, 16, 32, 64, 128], FRAMES)
    };
    let cfg = RunnerConfig::from_env();
    let batch = extension_net_load(
        &OVERFLOW_POLICY_NAMES,
        node_counts,
        frames,
        PAYLOAD_BYTES,
        SLOTS,
        QUEUE_CAPACITY,
        ROOT_SEED,
        &cfg,
    );
    let points: Vec<NetLoadPoint> = batch.oks().cloned().collect();
    if points.len() != OVERFLOW_POLICY_NAMES.len() * node_counts.len() {
        for e in batch.results.iter().filter_map(|r| r.as_ref().err()) {
            eprintln!("net_load cell failed: {e}");
        }
        std::process::exit(1);
    }

    let io_span = milback_bench::spans::span("io");
    let mut report = Report::new(
        "Extension net_load",
        "offered vs served load through the staged AP service pipeline, per overflow policy",
        "offered grants/s",
        "served grants/s / overflow counts",
    );
    for tag in OVERFLOW_POLICY_NAMES {
        let mut served = Series::new(format!("served/s ({tag})"));
        for p in points.iter().filter(|p| p.overflow == tag) {
            served.push(p.offered_per_s, p.served_per_s);
        }
        report.add_series(served);
    }
    if let Some(knee) = points
        .iter()
        .filter(|p| p.overflow == "drop" && p.dropped > 0)
        .min_by_key(|p| p.nodes)
    {
        report.note(format!(
            "drop's served load saturates at {:.0} grants/s ({} nodes offered {:.0} grants/s and shed {}): \
             the service knee of a capture stage two slot widths deep",
            knee.served_per_s, knee.nodes, knee.offered_per_s, knee.dropped,
        ));
    }
    report.note(format!(
        "{SLOTS} slots/frame, {frames} frames, {PAYLOAD_BYTES}-byte payloads, slotted ALOHA, \
         capture = 2 slot widths, stage queue depth {QUEUE_CAPACITY}, seed {ROOT_SEED:#x}"
    ));
    print!("{}", report.render());

    // Hand-rolled CSV, same hygiene as the other anchors: undefined cells
    // are empty (never NaN/inf), and reduced runs never touch the anchor.
    if !reduced {
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join("extension_net_load.csv");
            match std::fs::write(&path, to_csv(&points)) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    } else {
        // CI validates the reduced schema from a scratch copy instead.
        println!("{}", to_csv(&points));
    }
    drop(io_span);
    drop(main_span);
    milback_bench::spans::export_if_requested();
}

/// The full sweep schema, one row per (overflow policy, node count) cell.
fn to_csv(points: &[NetLoadPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "overflow,nodes,offered,served,dropped,deferred,degraded,\
         offered_per_s,served_per_s,delivered,delivery_rate\n",
    );
    for p in points {
        let opt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            p.overflow,
            p.nodes,
            p.offered,
            p.served,
            p.dropped,
            p.deferred,
            p.degraded,
            p.offered_per_s,
            p.served_per_s,
            p.delivered,
            opt(p.delivery_rate),
        );
    }
    out
}
