//! Network-scaling extension: slotted-ALOHA + SDM campaigns on the
//! discrete-event engine, sweeping the cell from 1 to 64 nodes.
//!
//! Each node count runs [`milback_core::Network::run_slotted`] — every node
//! duty-cycles into its hashed slot once per frame, the AP arbitrates
//! co-slotted transmissions by SDM separability — and reports per-node
//! goodput, slot collisions, and energy per delivered packet. The sweep
//! runs through the trial-parallel runner (one deterministic RNG stream per
//! node count), so the CSV is bit-identical at any thread count.
//!
//! When `mac_compare` has left a `results/METRICS_mac.json` behind, the
//! report cross-references the ALOHA campaign counters from it (both
//! sweeps share the sector scene and seeds).
//!
//! Run with: `cargo run --release -p milback-bench --bin net_scale`

use milback_bench::experiments::extension_net_scale;
use milback_bench::runner::RunnerConfig;
use milback_bench::{metrics_io, reduced_mode, results_dir, Report, Series};

fn main() {
    // Named `main`/`io` so `all_experiments` can derive its per-stage
    // table (setup = main - run_trials - io) from the exported span file.
    let main_span = milback_bench::spans::span("main");
    let mut report = Report::new(
        "Extension net_scale",
        "slotted-ALOHA + SDM scaling: per-node goodput, collisions, energy vs node count",
        "nodes",
        "per-node goodput (kbps) / collisions / energy (mJ)",
    );
    let reduced = reduced_mode();
    let node_counts: &[usize] = if reduced {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let frames = if reduced { 8 } else { 24 };
    let slots = 8;
    let payload_bytes = 16;
    let cfg = RunnerConfig::from_env();
    let batch = extension_net_scale(node_counts, frames, payload_bytes, slots, 0xE4, &cfg);

    let io_span = milback_bench::spans::span("io");
    let mut goodput = Series::new("per-node goodput (kbps)");
    let mut collisions = Series::new("slot collisions per node");
    let mut energy = Series::new("energy per packet (mJ)");
    let mut delivery = Series::new("delivery rate");
    for p in batch.oks() {
        goodput.push(p.nodes as f64, p.per_node_goodput_bps / 1e3);
        collisions.push(p.nodes as f64, p.collisions_per_node);
        energy.push_opt(p.nodes as f64, p.energy_per_packet_j.map(|e| e * 1e3));
        delivery.push(p.nodes as f64, p.delivery_rate);
    }
    let first_rate = batch
        .oks()
        .next()
        .map(|p| p.delivery_rate)
        .unwrap_or(f64::NAN);
    let last = batch.oks().last();
    report.add_series(goodput);
    report.add_series(collisions);
    report.add_series(energy);
    report.add_series(delivery);
    if let Some(p) = last {
        report.note(format!(
            "at {} nodes the delivery rate is {:.2} (vs {:.2} alone): slot sharing and \
             sub-beamwidth neighbour spacing both bite as the ±60° sector fills",
            p.nodes, p.delivery_rate, first_rate
        ));
    }
    if let Some(note) = mac_metrics_note() {
        report.note(note);
    }
    report.note(format!(
        "{} slots/frame, {} frames, {}-byte payloads, SDM threshold 20 dB; {}; {} worker threads",
        slots,
        frames,
        payload_bytes,
        batch.summary(),
        cfg.threads
    ));
    report.emit_respecting_reduced();
    drop(io_span);
    drop(main_span);
    milback_bench::spans::export_if_requested();
}

/// Cross-references the ALOHA campaign counters out of the artifact
/// `mac_compare` writes. Informational only — the two sweeps share seeds
/// and scenes but may have run at different frame counts, so the note
/// reports what the instrumented campaign saw rather than asserting
/// equality.
fn mac_metrics_note() -> Option<String> {
    let text = std::fs::read_to_string(results_dir().join("METRICS_mac.json")).ok()?;
    let slots_fired = metrics_io::parse_policy_counter(&text, "aloha", "slots_fired")?;
    let slot_collisions = metrics_io::parse_policy_counter(&text, "aloha", "slot_collisions")?;
    Some(format!(
        "METRICS_mac.json (mac_compare, aloha): {slots_fired} slots fired, \
         {slot_collisions} collided across the instrumented campaign"
    ))
}
