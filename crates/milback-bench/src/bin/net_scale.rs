//! Network-scaling extension: slotted-ALOHA + SDM campaigns on the
//! discrete-event engine, sweeping the cell from 1 to 64 nodes.
//!
//! Each node count runs [`milback_core::Network::run_slotted`] — every node
//! duty-cycles into its hashed slot once per frame, the AP arbitrates
//! co-slotted transmissions by SDM separability — and reports per-node
//! goodput, slot collisions, and energy per delivered packet. The sweep
//! runs through the trial-parallel runner (one deterministic RNG stream per
//! node count), so the CSV is bit-identical at any thread count.
//!
//! Run with: `cargo run --release -p milback-bench --bin net_scale`

use milback_bench::experiments::extension_net_scale;
use milback_bench::runner::RunnerConfig;
use milback_bench::{reduced_mode, Report, Series};

fn main() {
    let mut report = Report::new(
        "Extension net_scale",
        "slotted-ALOHA + SDM scaling: per-node goodput, collisions, energy vs node count",
        "nodes",
        "per-node goodput (kbps) / collisions / energy (mJ)",
    );
    let reduced = reduced_mode();
    let node_counts: &[usize] = if reduced {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let frames = if reduced { 8 } else { 24 };
    let slots = 8;
    let payload_bytes = 16;
    let cfg = RunnerConfig::from_env();
    let batch = extension_net_scale(node_counts, frames, payload_bytes, slots, 0xE4, &cfg);

    let mut goodput = Series::new("per-node goodput (kbps)");
    let mut collisions = Series::new("slot collisions per node");
    let mut energy = Series::new("energy per packet (mJ)");
    let mut delivery = Series::new("delivery rate");
    for p in batch.oks() {
        goodput.push(p.nodes as f64, p.per_node_goodput_bps / 1e3);
        collisions.push(p.nodes as f64, p.collisions_per_node);
        energy.push_opt(p.nodes as f64, p.energy_per_packet_j.map(|e| e * 1e3));
        delivery.push(p.nodes as f64, p.delivery_rate);
    }
    let first_rate = batch
        .oks()
        .next()
        .map(|p| p.delivery_rate)
        .unwrap_or(f64::NAN);
    let last = batch.oks().last();
    report.add_series(goodput);
    report.add_series(collisions);
    report.add_series(energy);
    report.add_series(delivery);
    if let Some(p) = last {
        report.note(format!(
            "at {} nodes the delivery rate is {:.2} (vs {:.2} alone): slot sharing and \
             sub-beamwidth neighbour spacing both bite as the ±60° sector fills",
            p.nodes, p.delivery_rate, first_rate
        ));
    }
    report.note(format!(
        "{} slots/frame, {} frames, {}-byte payloads, SDM threshold 20 dB; {}; {} worker threads",
        slots,
        frames,
        payload_bytes,
        batch.summary(),
        cfg.threads
    ));
    report.emit_respecting_reduced();
}
