//! Figure 11 — OAQFM microbenchmark.
//!
//! The node sits 2 m from the AP; the AP picks 27.5/28.5 GHz-class carriers
//! from the node's orientation and sends the four symbols 00, 01, 10, 11
//! back-to-back at 1 µs per symbol. We print the envelope-detector output
//! voltage at both FSA ports over time — the waveform the paper's scope
//! shot shows: each port responds only to its own tone.
//!
//! The per-symbol port powers run as runner trials through the memoized
//! [`FsaGainEval`] port-coupling path; the detector-noise stream is trial
//! stream 0 of root seed 0xF11 (identical to the historical
//! `GaussianSource::new(0xF11)` stream, since trial 0's seed is the root).

use milback_bench::runner::{run_trials, trial_rng, RunnerConfig};
use milback_bench::{Report, Series};
use milback_core::{LinkSimulator, Scene, SystemConfig};
use milback_node::node::port_powers_for_tones_eval;
use mmwave_rf::antenna::fsa::FsaGainEval;
use mmwave_sigproc::waveform::OaqfmSymbol;

fn main() {
    let main_span = milback_bench::spans::span("main");
    let mut config = SystemConfig::milback_default();
    // 1 µs symbols as in the microbenchmark (§9.1).
    config.downlink_symbol_rate_hz = 1e6;
    let scene = Scene::single_node(2.0, 12f64.to_radians());
    let sim = LinkSimulator::new(config.clone(), scene.clone()).unwrap();

    let carriers = sim.plan_carriers(None).unwrap();
    let (f_a, f_b) = match carriers {
        milback_ap::waveform::CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
        milback_ap::waveform::CarrierSet::SingleToneOok { f } => (f, f),
    };
    println!(
        "AP selected carriers from orientation: f_A = {:.2} GHz, f_B = {:.2} GHz",
        f_a / 1e9,
        f_b / 1e9
    );

    // Build the 4-symbol power traces through the channel and detectors.
    let gt = scene.ground_truth(0);
    let symbols: Vec<OaqfmSymbol> = (0..4).map(OaqfmSymbol::from_bits).collect();
    let trace_rate = 200e6;
    let sps = (trace_rate / config.downlink_symbol_rate_hz) as usize;
    let eval = FsaGainEval::for_dual(&config.node.fsa);
    let cfg = RunnerConfig::from_env();
    let powers: Vec<(f64, f64)> = run_trials(symbols.len(), 0xF11, &cfg, |i, _rng| {
        let s = &symbols[i];
        let mut tones = Vec::new();
        if s.tone_a {
            tones.push((f_a, incident(&sim, f_a)));
        }
        if s.tone_b {
            tones.push((f_b, incident(&sim, f_b)));
        }
        let p = port_powers_for_tones_eval(&eval, gt.incidence_rad, &tones);
        (p.a_w, p.b_w)
    });
    let mut pa = Vec::new();
    let mut pb = Vec::new();
    for &(a_w, b_w) in &powers {
        pa.extend(std::iter::repeat_n(a_w, sps));
        pb.extend(std::iter::repeat_n(b_w, sps));
    }
    let mut rng = trial_rng(0xF11, 0);
    let (va, vb) = config.node.detector_traces(&pa, &pb, trace_rate, &mut rng);

    // Report decimated traces (100 points per symbol period).
    let mut report = Report::new(
        "Figure 11",
        "OAQFM microbenchmark: detector voltage at both ports, symbols 00|01|10|11 @1 µs",
        "time (µs)",
        "detector output (mV)",
    );
    let step = sps / 12;
    let mut sa = Series::new("port A (mV)");
    let mut sb = Series::new("port B (mV)");
    for i in (0..va.len()).step_by(step) {
        let t_us = i as f64 / trace_rate * 1e6;
        sa.push(t_us, va[i] * 1e3);
        sb.push(t_us, vb[i] * 1e3);
    }
    report.add_series(sa);
    report.add_series(sb);

    // Per-symbol means — the decision statistics.
    let mut quiet = (0.0, 0.0);
    for (i, s) in symbols.iter().enumerate() {
        let seg_a = &va[i * sps + sps / 2..(i + 1) * sps];
        let seg_b = &vb[i * sps + sps / 2..(i + 1) * sps];
        let ma = mmwave_sigproc::stats::mean(seg_a) * 1e3;
        let mb = mmwave_sigproc::stats::mean(seg_b) * 1e3;
        if i == 0 {
            quiet = (ma, mb);
        }
        report.note(format!(
            "symbol {:02b}: port A = {ma:.2} mV, port B = {mb:.2} mV",
            s.to_bits()
        ));
    }
    report.note(format!(
        "off-level (symbol 00): A {:.3} mV, B {:.3} mV — tones separate cleanly at the two ports as in the paper's scope capture",
        quiet.0, quiet.1
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    drop(main_span);
    milback_bench::spans::export_if_requested();
}

fn incident(sim: &LinkSimulator, f: f64) -> f64 {
    use mmwave_rf::antenna::Antenna;
    let gt = sim.scene.ground_truth(0);
    let tx_w = mmwave_sigproc::units::dbm_to_watts(sim.config.ap.tx.port_power_dbm());
    let horn = mmwave_rf::antenna::Horn::miwave_20dbi();
    let g = mmwave_sigproc::units::db_to_lin(horn.gain_dbi(f, gt.azimuth_rad));
    mmwave_rf::channel::received_power_w(tx_w, g, 1.0, f, gt.range_m)
}
