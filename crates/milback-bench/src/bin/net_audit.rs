//! Packet-lifecycle audit sweep: drop-reason attribution, the
//! conservation invariant, and deterministic latency percentiles over the
//! 64-node sector scene, for every MAC policy with relaying off and on.
//!
//! Every cell runs the congested Capture/Plan/Transmit pipeline (so
//! `service_shed` drops are on the books) and — on the relay leg — the
//! 25%-gapped scene under a 2-hop budget (so coverage-family drops and
//! relayed deliveries appear too). The sweep core audits every cell's
//! ledger (`offered == delivered + Σ drops`); a violation fails the cell,
//! and this binary exits nonzero. The binary also re-runs the sharded
//! city path at 1/2/4/8 worker threads and demands the merged latency
//! sketches be bit-identical, which pins the cell-index merge order.
//!
//! Run with: `cargo run --release -p milback-bench --bin net_audit`
//!
//! Full runs write `results/METRICS_lifecycle.json` (schema
//! `milback-metrics-lifecycle-v1`) and the drop-attribution CSV
//! `results/extension_net_audit.csv`; reduced runs print the CSV to
//! stdout for CI schema validation and never touch the anchors.

use milback_bench::experiments::{
    extension_net_audit, net_audit_sharded_lifecycle, NetAuditPoint, MAC_POLICY_NAMES,
    NET_AUDIT_GAP_FRACTION,
};
use milback_bench::hostinfo::HostInfo;
use milback_bench::runner::RunnerConfig;
use milback_bench::{log_info, metrics_io, reduced_mode, results_dir, Report, Series};
use milback_core::DropReason;

/// Sweep shape: the acceptance scene is 64 nodes over the ±60° sector
/// (the relay leg re-places a quarter of them past coverage), 8-slot
/// frames so contention losses and pipeline shedding both occur, and
/// enough frames for every drop family to accumulate a stable count.
const NODES: usize = 64;
const NODES_REDUCED: usize = 16;
const SLOTS: usize = 8;
const FRAMES: usize = 24;
const FRAMES_REDUCED: usize = 6;
const PAYLOAD_BYTES: usize = 16;
const ROOT_SEED: u64 = 0xA0D1;
/// Sharded determinism check shape: cells × threads small enough to run
/// in both modes, large enough that every thread count actually fans out.
const SHARD_CELLS: usize = 4;
const SHARD_THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let (nodes, frames) = if reduced {
        (NODES_REDUCED, FRAMES_REDUCED)
    } else {
        (NODES, FRAMES)
    };
    let cfg = RunnerConfig::from_env();
    let batch = extension_net_audit(
        &MAC_POLICY_NAMES,
        nodes,
        frames,
        PAYLOAD_BYTES,
        SLOTS,
        ROOT_SEED,
        &cfg,
    );
    let points: Vec<NetAuditPoint> = batch.oks().cloned().collect();
    if points.len() != MAC_POLICY_NAMES.len() * 2 {
        for e in batch.results.iter().filter_map(|r| r.as_ref().err()) {
            eprintln!("net_audit cell failed (conservation or simulation): {e}");
        }
        std::process::exit(1);
    }

    // The sharded city path must report bit-identical sketches at every
    // worker-thread count: the merge runs serially in cell-index order.
    let shard_frames = if reduced { 4 } else { 12 };
    let mut shard_reference = None;
    for threads in SHARD_THREAD_COUNTS {
        let lifecycle = match net_audit_sharded_lifecycle(
            nodes,
            SHARD_CELLS,
            threads,
            shard_frames,
            PAYLOAD_BYTES,
            SLOTS,
            ROOT_SEED,
        ) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("sharded lifecycle at {threads} threads failed: {e}");
                std::process::exit(1);
            }
        };
        match &shard_reference {
            None => shard_reference = Some(lifecycle),
            Some(reference) => {
                if *reference != lifecycle {
                    eprintln!("sharded lifecycle diverged at {threads} threads");
                    std::process::exit(1);
                }
            }
        }
    }

    let io_span = milback_bench::spans::span("io");
    let mut report = Report::new(
        "Extension net_audit",
        "packet-lifecycle conservation: every offered packet delivered or attributed to a drop reason",
        "policy index",
        "delivered / offered",
    );
    for (relay, label) in [(false, "direct"), (true, "relay")] {
        let mut s = Series::new(format!("delivered fraction ({label})"));
        for (i, p) in points.iter().filter(|p| p.relay == relay).enumerate() {
            let frac = (p.lifecycle.offered > 0)
                .then(|| p.lifecycle.delivered() as f64 / p.lifecycle.offered as f64);
            s.push_opt(i as f64, frac);
        }
        report.add_series(s);
    }
    if let Some(p) = points
        .iter()
        .filter(|p| p.relay)
        .max_by_key(|p| p.lifecycle.dropped())
    {
        let (top_idx, top_count) = p
            .lifecycle
            .drops
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(k, &c)| (k, c))
            .unwrap_or((0, 0));
        report.note(format!(
            "{} (relay): offered {}, delivered {} direct + {} relayed, top drop reason \
             {} × {top_count}; slot-wait p95 {} µs",
            p.policy,
            p.lifecycle.offered,
            p.lifecycle.delivered_direct,
            p.lifecycle.delivered_relayed,
            DropReason::LABELS[top_idx],
            p.lifecycle
                .slot_wait_us
                .quantile(0.95)
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into()),
        ));
    }
    report.note(format!(
        "{SLOTS} slots/frame, {frames} frames, {PAYLOAD_BYTES}-byte payloads, {nodes} nodes, \
         gap fraction {NET_AUDIT_GAP_FRACTION} on the relay leg, congested Drop pipeline, \
         sharded sketches bit-identical at {SHARD_THREAD_COUNTS:?} threads, seed {ROOT_SEED:#x}",
    ));
    print!("{}", report.render());

    // The metrics document is written in both modes (its `reduced` flag
    // says which), matching `mac_compare`: CI validates the reduced
    // document, then regenerates the full-scale anchor. It goes out
    // before the CSV so a reduced run's stdout ends with the CSV — CI
    // slices it off by header.
    write_metrics(&points, nodes, frames, reduced, &cfg);
    let csv = to_csv(&points);
    if !reduced {
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join("extension_net_audit.csv");
            match std::fs::write(&path, &csv) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    } else {
        // CI validates the reduced schema from stdout instead.
        print!("{csv}");
    }
    drop(io_span);
    drop(main_span);
    milback_bench::spans::export_if_requested();
}

/// Writes `results/METRICS_lifecycle.json`. In a telemetry-off build the
/// ledgers are all zeros, so the document is skipped rather than written
/// empty — the artifact always describes an instrumented campaign.
fn write_metrics(
    points: &[NetAuditPoint],
    nodes: usize,
    frames: usize,
    reduced: bool,
    cfg: &RunnerConfig,
) {
    if points.iter().all(|p| p.lifecycle.offered == 0) {
        log_info!("telemetry off: skipping METRICS_lifecycle.json");
        return;
    }
    let config = [
        ("reduced", reduced.to_string()),
        ("nodes", nodes.to_string()),
        ("frames", frames.to_string()),
        ("slots", SLOTS.to_string()),
        ("payload_bytes", PAYLOAD_BYTES.to_string()),
        ("gap_fraction", NET_AUDIT_GAP_FRACTION.to_string()),
        ("threads", cfg.threads.to_string()),
        ("seed", ROOT_SEED.to_string()),
    ];
    let cells: Vec<(String, &milback_core::LifecycleStats)> = points
        .iter()
        .map(|p| {
            let leg = if p.relay { "relay" } else { "direct" };
            (format!("{}/{leg}", p.policy), &p.lifecycle)
        })
        .collect();
    let doc = metrics_io::metrics_lifecycle_json(&HostInfo::capture(), &config, &cells);
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join("METRICS_lifecycle.json");
    match std::fs::write(&path, doc) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// The drop-attribution CSV, one row per (policy, relay) cell: the full
/// drop table in canonical label order plus the three sketch percentiles.
/// Undefined cells (empty sketches) are empty, never NaN/inf.
fn to_csv(points: &[NetAuditPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("policy,relay,nodes,offered,delivered_direct,delivered_relayed");
    for label in DropReason::LABELS {
        let _ = write!(out, ",{label}");
    }
    out.push_str(
        ",slot_wait_p50_us,slot_wait_p95_us,slot_wait_p99_us,\
         residence_p50_us,residence_p95_us,residence_p99_us,\
         relay_extra_p50_us,relay_extra_p95_us,relay_extra_p99_us\n",
    );
    let opt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
    for p in points {
        let l = &p.lifecycle;
        let _ = write!(
            out,
            "{},{},{},{},{},{}",
            p.policy, p.relay as u8, p.nodes, l.offered, l.delivered_direct, l.delivered_relayed
        );
        for c in &l.drops {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(
            out,
            ",{},{},{},{},{},{},{},{},{}",
            opt(l.slot_wait_us.quantile(0.50)),
            opt(l.slot_wait_us.quantile(0.95)),
            opt(l.slot_wait_us.quantile(0.99)),
            opt(l.service_residence_us.quantile(0.50)),
            opt(l.service_residence_us.quantile(0.95)),
            opt(l.service_residence_us.quantile(0.99)),
            opt(l.relay_extra_us.quantile(0.50)),
            opt(l.relay_extra_us.quantile(0.95)),
            opt(l.relay_extra_us.quantile(0.99)),
        );
    }
    out
}
