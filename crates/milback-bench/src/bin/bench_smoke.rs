//! Machine-readable performance baselines (`results/BENCH_dsp.json` and
//! `results/BENCH_experiments.json`).
//!
//! The DSP half times the planned FFT layer (cached one-shot vs the seed's
//! plan-per-call path, plus the allocation-free in-place path), a full
//! range–Doppler frame serial vs parallel, beat synthesis, and one reduced
//! Figure-15 uplink run (through the trial-parallel runner). Every
//! contender pair is sampled round-robin (one short burst each,
//! alternating, min over many rounds) so background load on a shared
//! machine hits both sides equally instead of biasing whichever ran
//! second.
//!
//! The experiments half times each migrated experiment core end-to-end at
//! reduced scale — serial (`threads = 1`) vs parallel
//! (`RunnerConfig::from_env()`) — asserting the two schedules return
//! bit-identical results, and microbenches the hoisted/memoized
//! [`FsaGainEval`] gain evaluator against the direct per-call path on a
//! dense angle grid.
//!
//! The JSON files are regression baselines, not marketing numbers: core
//! count, thread count, and both sides of every ratio are recorded as
//! measured.

use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use milback_bench::experiments::{self, OrientSide};
use milback_bench::hostinfo::HostInfo;
use milback_bench::results_dir;
use milback_bench::runner::RunnerConfig;
use milback_bench::spans;
use milback_core::localization::Impairments;
use milback_core::SystemConfig;
use mmwave_rf::antenna::fsa::{FsaDesign, FsaGainEval, FsaPort};
use mmwave_rf::channel::{synthesize_beat_with_threads, Echo};
use mmwave_sigproc::complex::Complex;
use mmwave_sigproc::fft::{fft, Direction, FftPlan, FftPlanner};
use mmwave_sigproc::random::GaussianSource;
use std::f64::consts::PI;

/// The seed revision's one-shot FFT, transcribed verbatim: bit-reversal
/// table, twiddle table, and strided radix-2 butterflies rebuilt on every
/// call. This is the plan-per-call baseline the planner is measured
/// against (power-of-two lengths only, like the original).
fn seed_fft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    let mut buf = x.to_vec();
    let bits = n.trailing_zeros();
    let rev = (0..n as u32)
        .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
        .collect::<Vec<_>>();
    let twiddles: Vec<Complex> = (0..n / 2)
        .map(|k| Complex::cis(-2.0 * PI * k as f64 / n as f64))
        .collect();
    for (i, &r) in rev.iter().enumerate() {
        let r = r as usize;
        if i < r {
            buf.swap(i, r);
        }
    }
    let mut len = 2;
    while len <= n {
        let stride = n / len;
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = twiddles[k * stride];
                let a = buf[start + k];
                let b = buf[start + k + half] * w;
                buf[start + k] = a + b;
                buf[start + k + half] = a - b;
            }
        }
        len <<= 1;
    }
    buf
}

/// Round-robin min-of-rounds timer: each round runs every contender once
/// (a burst of `iters` calls), so transient machine load degrades all
/// contenders alike; the minimum over rounds estimates the unloaded cost.
/// Returns ns per call for each contender.
fn race(rounds: usize, iters: usize, contenders: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; contenders.len()];
    for _ in 0..rounds {
        for (slot, f) in best.iter_mut().zip(contenders.iter_mut()) {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            *slot = slot.min(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
    best
}

fn test_signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

struct FftRow {
    n: usize,
    kind: &'static str,
    cached_oneshot_ns: f64,
    plan_per_call_ns: f64,
    planned_inplace_ns: f64,
}

/// One FFT size: cached one-shot `fft()` vs plan-per-call vs planned
/// in-place. Power-of-two sizes use the transcribed seed path as the
/// plan-per-call baseline; Bluestein sizes (no seed transcription exists)
/// rebuild the current `FftPlan` every call instead.
fn bench_fft_size(n: usize, rounds: usize, iters: usize) -> FftRow {
    let x = test_signal(n);
    let pow2 = n.is_power_of_two();
    let plan = FftPlanner::plan(n);
    let mut buf = x.clone();
    let mut scratch = vec![0.0f64; plan.scratch_len()];

    // Sanity: the baseline and the planned path agree before we time them.
    if pow2 {
        let a = fft(&x);
        let b = seed_fft(&x);
        let err: f64 = a.iter().zip(&b).map(|(p, q)| (*p - *q).norm()).sum();
        assert!(
            err < 1e-6 * n as f64,
            "seed transcription disagrees at n={n}: {err}"
        );
    }

    let mut cached = || {
        std::hint::black_box(fft(std::hint::black_box(&x)));
    };
    let mut per_call_pow2 = || {
        std::hint::black_box(seed_fft(std::hint::black_box(&x)));
    };
    let mut per_call_bluestein = || {
        let mut b = std::hint::black_box(&x).clone();
        FftPlan::new(n).process(&mut b, Direction::Forward);
        std::hint::black_box(b);
    };
    let mut inplace = || {
        plan.process_with_scratch(&mut buf, &mut scratch, Direction::Forward);
    };
    let per_call: &mut dyn FnMut() = if pow2 {
        &mut per_call_pow2
    } else {
        &mut per_call_bluestein
    };
    let times = race(rounds, iters, &mut [&mut cached, per_call, &mut inplace]);
    FftRow {
        n,
        kind: if pow2 { "pow2" } else { "bluestein" },
        cached_oneshot_ns: times[0],
        plan_per_call_ns: times[1],
        planned_inplace_ns: times[2],
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".into()
    }
}

/// One migrated experiment core timed serial vs parallel at reduced scale.
struct ExpRow {
    name: &'static str,
    trials: usize,
    serial_ms: f64,
    parallel_ms: f64,
    bit_exact: bool,
}

impl ExpRow {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }
}

/// Runs an experiment core once per schedule to check bit-exactness, then
/// `rounds` more times per schedule (round-robin) taking the minimum.
fn bench_experiment<T: PartialEq>(
    name: &'static str,
    trials: usize,
    rounds: usize,
    run: impl Fn(&RunnerConfig) -> T,
) -> ExpRow {
    // One profiling span per experiment core, surfaced in the `spans`
    // section of BENCH_experiments.json.
    let _span = spans::span(name);
    let serial_cfg = RunnerConfig::serial();
    let parallel_cfg = RunnerConfig::from_env();
    let bit_exact = run(&serial_cfg) == run(&parallel_cfg);
    let mut serial_ns = f64::INFINITY;
    let mut parallel_ns = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        std::hint::black_box(run(&serial_cfg));
        serial_ns = serial_ns.min(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        std::hint::black_box(run(&parallel_cfg));
        parallel_ns = parallel_ns.min(t.elapsed().as_nanos() as f64);
    }
    let row = ExpRow {
        name,
        trials,
        serial_ms: serial_ns / 1e6,
        parallel_ms: parallel_ns / 1e6,
        bit_exact,
    };
    println!(
        "  {:<22} {:>3} trials  serial {:>8.1} ms  parallel {:>8.1} ms  ({:.2}x)  bit-exact {}",
        row.name,
        row.trials,
        row.serial_ms,
        row.parallel_ms,
        row.speedup(),
        row.bit_exact
    );
    row
}

/// Times the reduced experiment suite serial vs parallel through the
/// runner, asserting bitwise-identical results per core.
fn bench_experiments() -> Vec<ExpRow> {
    println!("experiment cores, reduced scale (serial vs parallel, min over rounds):");
    let rounds = 2;
    let mut rows = Vec::new();
    rows.push(bench_experiment("fig12a_ranging", 12, rounds, |cfg| {
        experiments::fig12a_ranging(&[2.0, 5.0, 8.0], 4, 0xF12A, cfg)
    }));
    rows.push(bench_experiment("fig12b_angle_cdf", 6, rounds, |cfg| {
        experiments::fig12b_angle_errors(&[(-10.0, 2.0), (8.0, 4.0)], 3, 0xF12B, cfg)
    }));
    rows.push(bench_experiment("fig13a_orient_node", 12, rounds, |cfg| {
        experiments::fig13_orientation(&[-15.0, 0.0, 15.0], 4, 0xF13A, cfg, OrientSide::Node)
    }));
    rows.push(bench_experiment("fig13b_orient_ap", 12, rounds, |cfg| {
        experiments::fig13_orientation(&[-12.0, 0.0, 12.0], 4, 0xF13B, cfg, OrientSide::Ap)
    }));
    rows.push(bench_experiment("fig14_downlink_spots", 3, rounds, |cfg| {
        experiments::fig14_spot_checks(&[2.0, 6.0, 10.0], 64, 0xF14, cfg)
    }));
    rows.push(bench_experiment("fig15_uplink_spots", 2, rounds, |cfg| {
        experiments::fig15_spot_checks(&[(10e6, 8.0), (40e6, 6.0)], 10_000, 0xF15, cfg)
    }));
    rows.push(bench_experiment("ablation_impairments", 8, rounds, |cfg| {
        experiments::ablation_impairments(
            &[
                (0.0, Impairments::none()),
                (3.0, Impairments::milback_default()),
            ],
            8.0,
            4,
            0xAB6,
            cfg,
        )
    }));
    rows.push(bench_experiment("ext_coded_uplink", 2, rounds, |cfg| {
        experiments::extension_coded_uplink(&[6.0, 10.0], 2048, 0xEC2, cfg)
    }));
    rows.push(bench_experiment("ext_tracking_fixes", 8, rounds, |cfg| {
        experiments::extension_tracking_fixes(8, 0.1, 0xEC3, cfg, &SystemConfig::milback_default())
    }));
    rows
}

/// The FSA gain-evaluator microbench: direct per-call `FsaDesign::gain_dbi`
/// vs the hoisted `FsaFreqEval` loop vs the warm memoized `FsaGainEval`
/// path, on a dense (port, frequency, angle) grid — bit-exact by assertion.
struct FsaBench {
    points: usize,
    unhoisted_ns: f64,
    hoisted_ns: f64,
    memoized_ns: f64,
    bit_exact: bool,
}

fn bench_fsa_gain_eval() -> FsaBench {
    let _span = spans::span("fsa_gain_eval");
    let design = FsaDesign::milback_default();
    let eval = FsaGainEval::new(&design);
    let freqs: Vec<f64> = (0..7).map(|i| 26.5e9 + 0.5e9 * i as f64).collect();
    let angles: Vec<f64> = (0..181)
        .map(|i| (-45.0 + 0.5 * i as f64).to_radians())
        .collect();
    let ports = [FsaPort::A, FsaPort::B];
    let points = ports.len() * freqs.len() * angles.len();

    // Bit-exactness across all three paths (also warms the memo caches).
    let mut bit_exact = true;
    for &port in &ports {
        for &f in &freqs {
            let fe = eval.at_freq(port, f);
            for &ang in &angles {
                let direct = design.gain_dbi(port, f, ang);
                bit_exact &= direct.to_bits() == fe.gain_dbi(ang).to_bits();
                bit_exact &= direct.to_bits() == eval.gain_dbi(port, f, ang).to_bits();
            }
        }
    }
    assert!(bit_exact, "FsaGainEval diverged from FsaDesign::gain_dbi");

    let mut unhoisted = || {
        let mut acc = 0.0;
        for &port in &ports {
            for &f in &freqs {
                for &ang in &angles {
                    acc += design.gain_dbi(port, f, ang);
                }
            }
        }
        std::hint::black_box(acc);
    };
    let mut hoisted = || {
        let mut acc = 0.0;
        for &port in &ports {
            for &f in &freqs {
                let fe = eval.at_freq(port, f);
                for &ang in &angles {
                    acc += fe.gain_dbi(ang);
                }
            }
        }
        std::hint::black_box(acc);
    };
    let mut memoized = || {
        let mut acc = 0.0;
        for &port in &ports {
            for &f in &freqs {
                for &ang in &angles {
                    acc += eval.gain_dbi(port, f, ang);
                }
            }
        }
        std::hint::black_box(acc);
    };
    let times = race(40, 4, &mut [&mut unhoisted, &mut hoisted, &mut memoized]);
    println!(
        "FSA gain sweep ({points} points): per-call {:.0} ns/pt, hoisted {:.0} ns/pt ({:.2}x), warm memo {:.0} ns/pt ({:.2}x), bit-exact {bit_exact}",
        times[0] / points as f64,
        times[1] / points as f64,
        times[0] / times[1],
        times[2] / points as f64,
        times[0] / times[2],
    );
    FsaBench {
        points,
        unhoisted_ns: times[0],
        hoisted_ns: times[1],
        memoized_ns: times[2],
        bit_exact,
    }
}

/// The batched-kernel bench: cold-grid FSA evaluation through the batch
/// (memo-bypassing) APIs vs the cold memoized per-point path, on the same
/// 2534-point grid as [`bench_fsa_gain_eval`] plus a localization-shaped
/// 900-frequency sweep; and a chirp stack through the scratch-fed batched
/// FFT path vs per-chirp allocating calls. Bit-exactness of every batch
/// path is asserted against the direct scalar calls.
struct BatchBench {
    points: usize,
    cold_memoized_ns: f64,
    batch_ns: f64,
    freq_points: usize,
    freq_cold_ns: f64,
    freq_batch_ns: f64,
    fmcw_chirps: usize,
    fmcw_sequential_ns: f64,
    fmcw_batched_ns: f64,
    bit_exact: bool,
}

fn bench_batch_kernels() -> BatchBench {
    let _span = spans::span("batch_kernels");
    let design = FsaDesign::milback_default();
    let eval = FsaGainEval::new(&design);
    let freqs: Vec<f64> = (0..7).map(|i| 26.5e9 + 0.5e9 * i as f64).collect();
    let angles: Vec<f64> = (0..181)
        .map(|i| (-45.0 + 0.5 * i as f64).to_radians())
        .collect();
    let ports = [FsaPort::A, FsaPort::B];
    let points = ports.len() * freqs.len() * angles.len();
    // Localization-shaped grid: one incidence angle, a dense sweep of
    // distinct frequencies (exactly the capture() gain-table pattern).
    let psi = 12f64.to_radians();
    let freq_grid: Vec<f64> = (0..900).map(|i| 26.5e9 + 3e9 * i as f64 / 899.0).collect();

    // Bit-exactness: every batch output must match the direct per-call
    // scalar path to the bit (the same property the proptests pin).
    let mut bit_exact = true;
    let mut out = vec![0.0; angles.len()];
    for &port in &ports {
        for &f in &freqs {
            eval.gain_dbi_angles_into(port, f, &angles, &mut out, false);
            for (i, &a) in angles.iter().enumerate() {
                bit_exact &= out[i].to_bits() == design.gain_dbi(port, f, a).to_bits();
            }
        }
    }
    let mut fout = vec![0.0; freq_grid.len()];
    eval.gain_linear_freqs_into(FsaPort::A, &freq_grid, psi, &mut fout, false);
    for (i, &f) in freq_grid.iter().enumerate() {
        bit_exact &= fout[i].to_bits() == design.gain_linear(FsaPort::A, f, psi).to_bits();
    }
    assert!(bit_exact, "a batch FSA path diverged from the scalar path");

    // Cold grids: each round clones the evaluator (cold caches, zeroed
    // counters), so the memoized contender pays the per-point lock/hash
    // cost the batch path is designed to skip.
    let mut cold_memoized = || {
        let e = eval.clone();
        let mut acc = 0.0;
        for &port in &ports {
            for &f in &freqs {
                for &ang in &angles {
                    acc += e.gain_dbi(port, f, ang);
                }
            }
        }
        std::hint::black_box(acc);
    };
    let mut batch = || {
        let e = eval.clone();
        let mut acc = 0.0;
        for &port in &ports {
            for &f in &freqs {
                e.gain_dbi_angles_into(port, f, &angles, &mut out, false);
                acc += out[angles.len() / 2];
            }
        }
        std::hint::black_box(acc);
    };
    let fsa = race(30, 2, &mut [&mut cold_memoized, &mut batch]);

    let mut freq_cold = || {
        let e = eval.clone();
        let mut acc = 0.0;
        for &f in &freq_grid {
            acc += e.gain_linear(FsaPort::A, f, psi);
        }
        std::hint::black_box(acc);
    };
    let mut freq_batch = || {
        let e = eval.clone();
        e.gain_linear_freqs_into(FsaPort::A, &freq_grid, psi, &mut fout, false);
        std::hint::black_box(fout[0]);
    };
    let freq = race(30, 2, &mut [&mut freq_cold, &mut freq_batch]);

    // FMCW chirp stack: per-chirp allocating spectra vs one batched pass
    // through a reused scratch arena.
    let proc = milback_ap::fmcw::FmcwProcessor::milback_default();
    let n_chirps = 8;
    let beats: Vec<Vec<Complex>> = (0..n_chirps)
        .map(|k| {
            test_signal(proc.samples_per_chirp())
                .into_iter()
                .map(|c| c.scale(1.0 + 0.1 * k as f64))
                .collect()
        })
        .collect();
    let mut scratch = milback_ap::fmcw::FmcwScratch::new();
    let flat = proc
        .range_spectra_flat_with(&beats, &mut scratch)
        .expect("batched spectra");
    let n = proc.fft_len();
    for (c, beat) in beats.iter().enumerate() {
        let reference = proc.range_spectrum(beat);
        for k in 0..n {
            bit_exact &= flat[c * n + k] == reference[k];
        }
    }
    assert!(bit_exact, "the batched FMCW path diverged from per-chirp");
    let mut sequential = || {
        for beat in &beats {
            std::hint::black_box(proc.range_spectrum(beat));
        }
    };
    let mut batched = || {
        std::hint::black_box(proc.range_spectra_flat_with(&beats, &mut scratch).unwrap());
    };
    let fmcw = race(30, 2, &mut [&mut sequential, &mut batched]);

    println!(
        "batch kernels: FSA {points}-pt grid cold-memo {:.0} ns/pt vs batch {:.0} ns/pt ({:.2}x); \
         {}-freq sweep {:.0} vs {:.0} ns/pt ({:.2}x); FMCW {n_chirps}-chirp stack {:.0} vs {:.0} kchirps/s ({:.2}x); bit-exact {bit_exact}",
        fsa[0] / points as f64,
        fsa[1] / points as f64,
        fsa[0] / fsa[1],
        freq_grid.len(),
        freq[0] / freq_grid.len() as f64,
        freq[1] / freq_grid.len() as f64,
        freq[0] / freq[1],
        n_chirps as f64 / fmcw[0] * 1e6,
        n_chirps as f64 / fmcw[1] * 1e6,
        fmcw[0] / fmcw[1],
    );
    BatchBench {
        points,
        cold_memoized_ns: fsa[0],
        batch_ns: fsa[1],
        freq_points: freq_grid.len(),
        freq_cold_ns: freq[0],
        freq_batch_ns: freq[1],
        fmcw_chirps: n_chirps,
        fmcw_sequential_ns: fmcw[0],
        fmcw_batched_ns: fmcw[1],
        bit_exact,
    }
}

/// The sharded-campaign bench: single-cell vs 4-cell sharded nodes/s on
/// the same sector campaign, plus the acceptance proofs — a 1-cell sharded
/// run reproduces `run_mac` bit-for-bit, the sharded aggregate is
/// invariant across 1/2/4/8 worker threads, and the streaming aggregate's
/// report footprint does not grow with node count.
struct ShardBench {
    nodes: usize,
    cells: usize,
    threads: usize,
    single_cell_nodes_per_sec: f64,
    sharded_nodes_per_sec: f64,
    shard_bit_exact: bool,
    bucket_footprint: usize,
    bounded_memory: bool,
}

fn bench_sharded_campaign() -> ShardBench {
    use milback_core::{CampaignAggregate, MacPolicy, SlottedAloha};

    let _span = spans::span("sharded_campaign");
    let nodes = 64;
    let cells = 4;
    let frames = 4;
    let slots = 8;
    let seed = 0x5AD5u64;
    let c = experiments::sector_campaign(nodes, 16, slots, seed).expect("sector campaign");
    let factory = |_: usize, s: u64| Box::new(SlottedAloha::new(s)) as Box<dyn MacPolicy>;

    // Proof 1: one cell, many worker threads — the sharded path must
    // reproduce today's `run_mac` report bit-for-bit (`==` and `to_bits`).
    let sharded_reports = c
        .net
        .run_sharded_mac_reports(1, 4, seed, frames, &c.payload, &c.plan, 20.0, factory)
        .expect("1-cell sharded run");
    let mut rng = GaussianSource::new(seed);
    let plain = c
        .net
        .run_mac(
            Box::new(SlottedAloha::new(seed)),
            frames,
            &c.payload,
            &c.plan,
            20.0,
            &mut rng,
        )
        .expect("plain run_mac");
    let mut shard_bit_exact = sharded_reports.len() == 1 && sharded_reports[0] == plain;
    for (a, b) in sharded_reports[0].nodes.iter().zip(&plain.nodes) {
        shard_bit_exact &= a.energy_j.to_bits() == b.energy_j.to_bits();
        shard_bit_exact &= a.mean_snr_db.map(f64::to_bits) == b.mean_snr_db.map(f64::to_bits);
    }

    // Proof 2: the sharded aggregate is invariant across thread counts.
    let run_agg = |n_cells: usize, threads: usize| {
        c.net
            .run_sharded_mac(
                n_cells, threads, seed, frames, &c.payload, &c.plan, 20.0, factory,
            )
            .expect("sharded campaign")
    };
    let baseline = run_agg(cells, 1);
    for threads in [2usize, 4, 8] {
        let agg = run_agg(cells, threads);
        shard_bit_exact &= agg == baseline;
        shard_bit_exact &= agg.energy_j.to_bits() == baseline.energy_j.to_bits();
        shard_bit_exact &= agg.snr_sum_db.to_bits() == baseline.snr_sum_db.to_bits();
    }
    assert!(shard_bit_exact, "the sharded campaign path diverged");

    // Proof 3: bounded memory — the aggregate's report footprint is the
    // same number of histogram buckets at half the node count.
    let half = experiments::sector_campaign(nodes / 2, 16, slots, seed).expect("half campaign");
    let half_agg = half
        .net
        .run_sharded_mac(
            cells,
            2,
            seed,
            frames,
            &half.payload,
            &half.plan,
            20.0,
            factory,
        )
        .expect("half-scale campaign");
    let bucket_footprint = baseline.bucket_footprint();
    let bounded_memory = bucket_footprint == half_agg.bucket_footprint()
        && bucket_footprint == CampaignAggregate::new().bucket_footprint();
    assert!(bounded_memory, "aggregate footprint grew with node count");

    // Throughput: single-cell vs sharded, round-robin min over rounds.
    let threads = RunnerConfig::from_env().threads;
    let mut single = || {
        std::hint::black_box(run_agg(1, threads));
    };
    let mut sharded = || {
        std::hint::black_box(run_agg(cells, threads));
    };
    let times = race(10, 1, &mut [&mut single, &mut sharded]);
    let bench = ShardBench {
        nodes,
        cells,
        threads,
        single_cell_nodes_per_sec: nodes as f64 / times[0] * 1e9,
        sharded_nodes_per_sec: nodes as f64 / times[1] * 1e9,
        shard_bit_exact,
        bucket_footprint,
        bounded_memory,
    };
    println!(
        "sharded campaign ({nodes} nodes): single-cell {:.0} nodes/s, {cells}-cell sharded {:.0} nodes/s \
         on {threads} thread(s) ({:.2}x); bit-exact {shard_bit_exact}, footprint {} buckets (bounded {bounded_memory})",
        bench.single_cell_nodes_per_sec,
        bench.sharded_nodes_per_sec,
        bench.sharded_nodes_per_sec / bench.single_cell_nodes_per_sec,
        bench.bucket_footprint,
    );
    bench
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn main() {
    let host = HostInfo::capture();
    let cores = host.cores;
    let threads = host.threads;

    // --- Planned-FFT microbenches ------------------------------------
    let fft_span = spans::span("dsp_fft_micro");
    println!("FFT microbenches (min over round-robin rounds):");
    let mut fft_rows = Vec::new();
    for &(n, rounds, iters) in &[
        (256usize, 60, 40),
        (1024, 60, 20),
        (4096, 60, 10),
        (900, 60, 10),
    ] {
        let row = bench_fft_size(n, rounds, iters);
        println!(
            "  n={:<5} {:<9} cached {:>9.1} ns  plan-per-call {:>9.1} ns  ({:.2}x)  in-place {:>9.1} ns",
            row.n,
            row.kind,
            row.cached_oneshot_ns,
            row.plan_per_call_ns,
            row.plan_per_call_ns / row.cached_oneshot_ns,
            row.planned_inplace_ns,
        );
        fft_rows.push(row);
    }
    let fft4096 = fft_rows.iter().find(|r| r.n == 4096).unwrap();
    let fft4096_speedup = fft4096.plan_per_call_ns / fft4096.cached_oneshot_ns;
    drop(fft_span);

    // --- Full range–Doppler frame, serial vs parallel ----------------
    let rd_span = spans::span("dsp_range_doppler");
    let proc = milback_ap::fmcw::FmcwProcessor::milback_default();
    let dp = milback_ap::doppler::DopplerProcessor::milback_default();
    let mut rng = GaussianSource::new(21);
    let n_chirps = 8;
    let beats: Vec<Vec<Complex>> = (0..n_chirps)
        .map(|k| {
            let gamma = if k % 2 == 0 { 0.83 } else { 0.18 };
            let echoes = vec![Echo::constant(2.0, 3e-4), Echo::constant(4.0, 1e-5 * gamma)];
            let mut b = synthesize_beat_with_threads(&proc.chirp, &echoes, proc.sample_rate_hz, 1);
            rng.add_complex_noise(&mut b, 1e-14);
            b
        })
        .collect();
    let serial_map = dp.range_doppler_with_threads(&proc, &beats, 1).unwrap();
    let parallel_map = dp
        .range_doppler_with_threads(&proc, &beats, threads)
        .unwrap();
    let rd_bit_exact = serial_map == parallel_map;
    assert!(rd_bit_exact, "parallel range-Doppler diverged from serial");
    let mut rd_serial = || {
        std::hint::black_box(dp.range_doppler_with_threads(&proc, &beats, 1).unwrap());
    };
    let mut rd_parallel = || {
        std::hint::black_box(
            dp.range_doppler_with_threads(&proc, &beats, threads)
                .unwrap(),
        );
    };
    let rd = race(20, 2, &mut [&mut rd_serial, &mut rd_parallel]);
    let rd_speedup = rd[0] / rd[1];
    println!(
        "range-Doppler frame ({n_chirps} chirps x {} bins): serial {:.2} ms, parallel({threads}) {:.2} ms ({:.2}x), bit-exact {rd_bit_exact}",
        proc.fft_len() / 2,
        rd[0] / 1e6,
        rd[1] / 1e6,
        rd_speedup,
    );
    drop(rd_span);

    // --- Beat synthesis ----------------------------------------------
    let beat_span = spans::span("dsp_beat_synthesis");
    let echoes = vec![
        Echo::constant(2.0, 3e-4),
        Echo::constant(4.0, 1e-5),
        Echo::constant(6.5, 5e-4),
    ];
    let mut beat_serial = || {
        std::hint::black_box(synthesize_beat_with_threads(
            &proc.chirp,
            &echoes,
            proc.sample_rate_hz,
            1,
        ));
    };
    let mut beat_parallel = || {
        std::hint::black_box(synthesize_beat_with_threads(
            &proc.chirp,
            &echoes,
            proc.sample_rate_hz,
            threads,
        ));
    };
    let beat = race(40, 10, &mut [&mut beat_serial, &mut beat_parallel]);
    println!(
        "beat synthesis (3 echoes, 900 samples): serial {:.1} us, parallel({threads}) {:.1} us ({:.2}x)",
        beat[0] / 1e3,
        beat[1] / 1e3,
        beat[0] / beat[1],
    );
    drop(beat_span);

    // --- Reduced Figure-15 uplink run (through the runner) -----------
    let uplink_span = spans::span("uplink_fig15");
    let t = Instant::now();
    let spots =
        experiments::fig15_spot_checks(&[(10e6, 8.0)], 20_000, 0xF15, &RunnerConfig::serial());
    let uplink_ms = t.elapsed().as_nanos() as f64 / 1e6;
    let spot = spots.results[0]
        .as_ref()
        .expect("reduced fig15 uplink succeeds");
    println!(
        "fig15 uplink (reduced, 20 kB at 8 m, 10 Mbps, via runner): {:.1} ms, SNR {:.1} dB, BER {:.1e}",
        uplink_ms, spot.snr_db, spot.ber,
    );
    drop(uplink_span);

    // --- Experiment cores + FSA evaluator ----------------------------
    let exp_rows = bench_experiments();
    let fsa = bench_fsa_gain_eval();
    let batch = bench_batch_kernels();
    let shard = bench_sharded_campaign();
    let speedups: Vec<f64> = exp_rows.iter().map(|r| r.speedup()).collect();
    let best_speedup = speedups.iter().copied().fold(0.0, f64::max);
    let median_speedup = median(speedups);
    let all_bit_exact = exp_rows.iter().all(|r| r.bit_exact)
        && fsa.bit_exact
        && batch.bit_exact
        && shard.shard_bit_exact;
    assert!(all_bit_exact, "a parallel schedule or evaluator diverged");

    // Every stage guard is closed by here, so the snapshot carries the
    // full per-stage breakdown (plus the runner's own `run_trials` span).
    let span_stats = spans::snapshot();

    // --- BENCH_dsp.json -----------------------------------------------
    let io_span = spans::span("io");
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"milback-bench-dsp-v1\",\n");
    let _ = writeln!(j, "  \"host\": {},", host.to_json());
    j.push_str("  \"timer\": \"min over round-robin rounds\",\n");
    j.push_str("  \"fft\": [\n");
    for (i, r) in fft_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{ \"n\": {}, \"kind\": \"{}\", \"cached_oneshot_ns\": {}, \"plan_per_call_ns\": {}, \"planned_inplace_ns\": {}, \"cached_vs_plan_per_call\": {:.2} }}{}",
            r.n,
            r.kind,
            json_f(r.cached_oneshot_ns),
            json_f(r.plan_per_call_ns),
            json_f(r.planned_inplace_ns),
            r.plan_per_call_ns / r.cached_oneshot_ns,
            if i + 1 == fft_rows.len() { "" } else { "," },
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"range_doppler\": {{ \"n_chirps\": {n_chirps}, \"n_range\": {}, \"serial_ns\": {}, \"parallel_ns\": {}, \"threads\": {threads}, \"speedup\": {:.2}, \"bit_exact\": {rd_bit_exact} }},",
        proc.fft_len() / 2,
        json_f(rd[0]),
        json_f(rd[1]),
        rd_speedup,
    );
    let _ = writeln!(
        j,
        "  \"beat_synthesis\": {{ \"echoes\": 3, \"samples\": 900, \"serial_ns\": {}, \"parallel_ns\": {}, \"speedup\": {:.2} }},",
        json_f(beat[0]),
        json_f(beat[1]),
        beat[0] / beat[1],
    );
    let _ = writeln!(
        j,
        "  \"uplink_fig15_reduced\": {{ \"distance_m\": 8.0, \"bit_rate_mbps\": 10, \"payload_bytes\": 20000, \"wall_ms\": {:.1}, \"snr_db\": {:.2}, \"ber\": {:.3e} }},",
        uplink_ms, spot.snr_db, spot.ber,
    );
    let _ = writeln!(
        j,
        "  \"acceptance\": {{ \"fft4096_cached_vs_plan_per_call\": {:.2}, \"fft4096_target\": 5.0, \"range_doppler_speedup\": {:.2}, \"range_doppler_target\": 1.5, \"range_doppler_target_needs_cores\": 4, \"cores\": {cores} }}",
        fft4096_speedup, rd_speedup,
    );
    j.push_str("}\n");

    let dir = results_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("BENCH_dsp.json");
    fs::write(&path, &j).expect("write BENCH_dsp.json");
    println!("wrote {}", path.display());

    // --- BENCH_experiments.json ---------------------------------------
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"milback-bench-experiments-v1\",\n");
    let _ = writeln!(j, "  \"host\": {},", host.to_json());
    j.push_str("  \"timer\": \"min over rounds, serial/parallel round-robin\",\n");
    j.push_str("  \"experiments\": [\n");
    for (i, r) in exp_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{ \"name\": \"{}\", \"trials\": {}, \"serial_ms\": {:.1}, \"parallel_ms\": {:.1}, \"speedup\": {:.2}, \"bit_exact\": {} }}{}",
            r.name,
            r.trials,
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            r.bit_exact,
            if i + 1 == exp_rows.len() { "" } else { "," },
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"fsa_gain_eval\": {{ \"points\": {}, \"unhoisted_ns_per_point\": {}, \"hoisted_ns_per_point\": {}, \"memoized_ns_per_point\": {}, \"hoisted_speedup\": {:.2}, \"memoized_speedup\": {:.2}, \"bit_exact\": {} }},",
        fsa.points,
        json_f(fsa.unhoisted_ns / fsa.points as f64),
        json_f(fsa.hoisted_ns / fsa.points as f64),
        json_f(fsa.memoized_ns / fsa.points as f64),
        fsa.unhoisted_ns / fsa.hoisted_ns,
        fsa.unhoisted_ns / fsa.memoized_ns,
        fsa.bit_exact,
    );
    // The batched hot-path kernels: cold-grid FSA batches vs the cold
    // memoized per-point path, the localization-shaped frequency sweep,
    // and the scratch-fed FMCW chirp stack. The zero-alloc claim is pinned
    // by the counting-allocator integration test, referenced here so the
    // JSON is self-describing.
    let _ = writeln!(
        j,
        "  \"batch_kernels\": {{ \"fsa_points\": {}, \"fsa_cold_memoized_ns_per_point\": {}, \"fsa_batch_ns_per_point\": {}, \"fsa_batch_speedup\": {:.2}, \"fsa_freq_points\": {}, \"fsa_freq_cold_ns_per_point\": {}, \"fsa_freq_batch_ns_per_point\": {}, \"fsa_freq_batch_speedup\": {:.2}, \"fmcw_chirps\": {}, \"fmcw_sequential_chirps_per_s\": {}, \"fmcw_batched_chirps_per_s\": {}, \"fmcw_batch_speedup\": {:.2}, \"firmware_allocs_per_packet\": 0, \"allocs_proof\": \"crates/milback-bench/tests/alloc_free_node.rs\", \"batch_bit_exact\": {} }},",
        batch.points,
        json_f(batch.cold_memoized_ns / batch.points as f64),
        json_f(batch.batch_ns / batch.points as f64),
        batch.cold_memoized_ns / batch.batch_ns,
        batch.freq_points,
        json_f(batch.freq_cold_ns / batch.freq_points as f64),
        json_f(batch.freq_batch_ns / batch.freq_points as f64),
        batch.freq_cold_ns / batch.freq_batch_ns,
        batch.fmcw_chirps,
        json_f(batch.fmcw_chirps as f64 / batch.fmcw_sequential_ns * 1e9),
        json_f(batch.fmcw_chirps as f64 / batch.fmcw_batched_ns * 1e9),
        batch.fmcw_sequential_ns / batch.fmcw_batched_ns,
        batch.bit_exact,
    );
    // The sharded city-scale campaign path: single-cell vs sharded
    // throughput on the same campaign, with the 1-cell `run_mac` parity,
    // 1/2/4/8-thread invariance, and bounded-footprint proofs recorded as
    // acceptance keys.
    let _ = writeln!(
        j,
        "  \"sharded_campaign\": {{ \"nodes\": {}, \"cells\": {}, \"threads\": {}, \"single_cell_nodes_per_sec\": {}, \"sharded_nodes_per_sec\": {}, \"shard_speedup\": {:.2}, \"shard_bit_exact\": {}, \"bucket_footprint\": {}, \"bounded_memory\": {} }},",
        shard.nodes,
        shard.cells,
        shard.threads,
        json_f(shard.single_cell_nodes_per_sec),
        json_f(shard.sharded_nodes_per_sec),
        shard.sharded_nodes_per_sec / shard.single_cell_nodes_per_sec,
        shard.shard_bit_exact,
        shard.bucket_footprint,
        shard.bounded_memory,
    );
    // Host-side wall-clock profiling spans: the per-stage breakdown of
    // this run (empty in a telemetry-off build, where spans are inert).
    j.push_str("  \"spans\": [\n");
    for (i, s) in span_stats.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{ \"name\": \"{}\", \"total_ms\": {:.1}, \"count\": {} }}{}",
            s.name,
            s.total_ns as f64 / 1e6,
            s.count,
            if i + 1 == span_stats.len() { "" } else { "," },
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"acceptance\": {{ \"runner_target_speedup\": 1.8, \"runner_target_needs_cores\": 4, \"cores\": {cores}, \"threads\": {threads}, \"runner_best_speedup\": {:.2}, \"runner_median_speedup\": {:.2}, \"fsa_target_speedup\": 2.0, \"fsa_hoisted_speedup\": {:.2}, \"fsa_memoized_speedup\": {:.2}, \"fsa_batch_speedup\": {:.2}, \"batch_bit_exact\": {}, \"shard_bit_exact\": {}, \"shard_bounded_memory\": {}, \"all_bit_exact\": {all_bit_exact} }}",
        best_speedup,
        median_speedup,
        fsa.unhoisted_ns / fsa.hoisted_ns,
        fsa.unhoisted_ns / fsa.memoized_ns,
        // The cold-grid number: a dense sweep of distinct frequencies is
        // the grid on which the memo never hits (localization's capture
        // tables) and where the batch path's lock/hash bypass pays off.
        batch.freq_cold_ns / batch.freq_batch_ns,
        batch.bit_exact,
        shard.shard_bit_exact,
        shard.bounded_memory,
    );
    j.push_str("}\n");

    let path = dir.join("BENCH_experiments.json");
    fs::write(&path, &j).expect("write BENCH_experiments.json");
    println!("wrote {}", path.display());
    drop(io_span);
    spans::export_if_requested();
}
