//! Figure 14 — Downlink performance.
//!
//! SINR at the node's MCU input vs AP–node distance for the OAQFM downlink
//! (two tones ~1 GHz apart, selected from the node's 12° orientation), and
//! the analytic BER the SINR implies. The Monte-Carlo spot checks run
//! through the trial-parallel runner (root seed 0xF14, one deterministic
//! stream per distance); failed transfers are reported, not swallowed.
//!
//! Paper anchors: SINR > 12 dB at 10 m (enough for BER < 1e-8); the curve
//! saturates near 23 dB at short range where cross-port tone leakage — not
//! noise — limits it (which is why the paper reports SINR, not SNR).

use milback_bench::experiments::fig14_spot_checks;
use milback_bench::runner::RunnerConfig;
use milback_bench::{linspace, reduced_mode, Report, Series};
use milback_core::{LinkSimulator, Scene, SystemConfig};

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let distances = if reduced {
        linspace(0.5, 12.0, 6)
    } else {
        linspace(0.5, 12.0, 24)
    };
    let orientation = 12f64.to_radians();

    let mut sinr_series = Series::new("SINR (dB)");
    let mut snr_series = Series::new("SNR-only (dB)");
    let mut ber_series = Series::new("log10 BER");

    for &d in &distances {
        let sim = LinkSimulator::new(
            SystemConfig::milback_default(),
            Scene::single_node(d, orientation),
        )
        .unwrap();
        let carriers = sim.plan_carriers(None).unwrap();
        let (f_a, f_b) = match carriers {
            milback_ap::waveform::CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
            milback_ap::waveform::CarrierSet::SingleToneOok { f } => (f, f),
        };
        let psi = sim.scene.ground_truth(0).incidence_rad;
        let (ra, rb) = sim.downlink_sinr_breakdown(f_a, f_b, psi);
        let sinr = ra.sinr_db().min(rb.sinr_db());
        let snr = ra.snr_db().min(rb.snr_db());
        sinr_series.push(d, sinr);
        snr_series.push(d, snr);
        ber_series.push(
            d,
            LinkSimulator::downlink_ber_from_sinr(sinr)
                .max(1e-300)
                .log10(),
        );
    }

    // Monte-Carlo spot checks: deliver an actual payload at 2, 6 and 10 m.
    let cfg = RunnerConfig::from_env();
    let spot_distances = [2.0, 6.0, 10.0];
    let payload_bytes = if reduced { 64 } else { 256 };
    let spots = fig14_spot_checks(&spot_distances, payload_bytes, 0xF14, &cfg);

    let mut report = Report::new(
        "Figure 14",
        "Downlink SINR vs distance (OAQFM, carriers from 12° orientation, 36 Mbps)",
        "distance (m)",
        "SINR (dB) / log10 BER",
    );
    let at = |s: &Series, x: f64| {
        s.points
            .iter()
            .min_by(|a, b| (a.0 - x).abs().partial_cmp(&(b.0 - x).abs()).unwrap())
            .and_then(|p| p.1)
            .unwrap()
    };
    let s10 = at(&sinr_series, 10.0);
    let s2 = at(&sinr_series, 2.0);
    report.add_series(sinr_series);
    report.add_series(snr_series);
    report.add_series(ber_series);
    report.note(format!(
        "SINR at 10 m: {s10:.1} dB (paper: >12 dB → BER < 1e-8); SINR at 2 m: {s2:.1} dB (paper: ~23 dB, interference-limited)"
    ));
    report.note("short-range saturation = cross-port sidelobe leakage; SNR-only curve keeps climbing, which is why the paper reports SINR");
    for s in spots.oks() {
        report.note(format!(
            "waveform-level transfer at {} m: measured BER {:.1e}, SINR (analytic) {:.1} dB",
            s.distance_m, s.ber, s.sinr_db
        ));
    }
    for (i, e) in spots.failures() {
        report.note(format!("spot check at {} m FAILED: {e}", spot_distances[i]));
    }
    report.note(format!(
        "spot checks: {}; {} worker threads, deterministic per-trial streams",
        spots.summary(),
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    drop(main_span);
    milback_bench::spans::export_if_requested();
}
