//! Figure 13b — Orientation estimation at the AP.
//!
//! The node sits 2 m away; port A toggles while port B absorbs; the AP
//! measures which part of the Field-2 sweep reflects strongest after
//! background subtraction. 25 trials per orientation, each with its own
//! deterministic RNG stream via the trial-parallel runner (root 0xF13B).
//!
//! Paper anchors: mean error < 1.5° generally, rising toward ~3° between
//! −6° and −2° where the FSA ground plane's switching-correlated mirror
//! reflection collides with the modulated backscatter.

use milback_bench::experiments::{fig13_orientation, OrientSide};
use milback_bench::runner::RunnerConfig;
use milback_bench::{reduced_mode, Report, Series};
use mmwave_sigproc::stats::ErrorSummary;

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let orientations: Vec<f64> = if reduced {
        vec![-12.0, -4.0, 0.0, 12.0]
    } else {
        vec![
            -24.0, -18.0, -12.0, -8.0, -6.0, -4.0, -2.0, 0.0, 4.0, 8.0, 12.0, 18.0, 24.0,
        ]
    };
    let trials = if reduced { 5 } else { 25 };
    let cfg = RunnerConfig::from_env();

    let results = fig13_orientation(&orientations, trials, 0xF13B, &cfg, OrientSide::Ap);

    let mut mean_series = Series::new("mean error (deg)");
    let mut std_series = Series::new("std dev (deg)");
    let mut near_normal = Vec::new();
    let mut elsewhere = Vec::new();
    let mut failed = 0;
    for r in &results {
        let s = ErrorSummary::from_abs_errors(&r.abs_errors_deg);
        mean_series.push(r.orientation_deg, s.mean);
        std_series.push(r.orientation_deg, s.std_dev);
        if (-4.0..=4.0).contains(&r.orientation_deg) {
            near_normal.push(s.mean);
        } else {
            elsewhere.push(s.mean);
        }
        failed += r.failed;
    }
    let total = orientations.len() * trials;

    let mut report = Report::new(
        "Figure 13b",
        "AP-side orientation error vs orientation (25 trials, 2 m, port A toggling)",
        "orientation (deg)",
        "error (deg)",
    );
    report.add_series(mean_series);
    report.add_series(std_series);
    report.note(format!(
        "mean error in the mirror-collision band (±4° of normal): {:.2}°; elsewhere: {:.2}° (paper: error elevated near normal, ≤3° everywhere)",
        mmwave_sigproc::stats::mean(&near_normal),
        mmwave_sigproc::stats::mean(&elsewhere)
    ));
    report.note("cause: the switching-correlated fraction of the FSA ground-plane mirror reflection survives background subtraction (§9.3)");
    report.note(format!(
        "{} ok / {failed} failed ({total} trials); {} worker threads, deterministic per-trial streams",
        total - failed,
        cfg.threads
    ));
    {
        let _io = milback_bench::spans::span("io");
        report.emit_respecting_reduced();
    }
    drop(main_span);
    milback_bench::spans::export_if_requested();
}
