//! Figure 13b — Orientation estimation at the AP.
//!
//! The node sits 2 m away; port A toggles while port B absorbs; the AP
//! measures which part of the Field-2 sweep reflects strongest after
//! background subtraction. 25 trials per orientation.
//!
//! Paper anchors: mean error < 1.5° generally, rising toward ~3° between
//! −6° and −2° where the FSA ground plane's switching-correlated mirror
//! reflection collides with the modulated backscatter.

use milback_bench::{Report, Series};
use milback_core::{LocalizationPipeline, Scene, SystemConfig};
use mmwave_sigproc::random::GaussianSource;
use mmwave_sigproc::stats::ErrorSummary;

fn main() {
    let orientations: Vec<f64> = vec![
        -24.0, -18.0, -12.0, -8.0, -6.0, -4.0, -2.0, 0.0, 4.0, 8.0, 12.0, 18.0, 24.0,
    ];
    let trials = 25;
    let mut rng = GaussianSource::new(0xF13B);

    let mut mean_series = Series::new("mean error (deg)");
    let mut std_series = Series::new("std dev (deg)");
    let mut near_normal = Vec::new();
    let mut elsewhere = Vec::new();

    for &deg in &orientations {
        let pipeline = LocalizationPipeline::new(
            SystemConfig::milback_default(),
            Scene::indoor(2.0, (-deg).to_radians()),
        )
        .unwrap();
        let truth = pipeline.scene.ground_truth(0).incidence_rad.to_degrees();
        let mut errors = Vec::with_capacity(trials);
        for _ in 0..trials {
            match pipeline.orient_at_ap(&mut rng) {
                Ok(est) => errors.push((est.to_degrees() - truth).abs()),
                Err(e) => eprintln!("  trial failed at {deg}°: {e}"),
            }
        }
        let s = ErrorSummary::from_abs_errors(&errors);
        mean_series.push(deg, s.mean);
        std_series.push(deg, s.std_dev);
        if (-4.0..=4.0).contains(&deg) {
            near_normal.push(s.mean);
        } else {
            elsewhere.push(s.mean);
        }
    }

    let mut report = Report::new(
        "Figure 13b",
        "AP-side orientation error vs orientation (25 trials, 2 m, port A toggling)",
        "orientation (deg)",
        "error (deg)",
    );
    report.add_series(mean_series);
    report.add_series(std_series);
    report.note(format!(
        "mean error in the mirror-collision band (±4° of normal): {:.2}°; elsewhere: {:.2}° (paper: error elevated near normal, ≤3° everywhere)",
        mmwave_sigproc::stats::mean(&near_normal),
        mmwave_sigproc::stats::mean(&elsewhere)
    ));
    report.note("cause: the switching-correlated fraction of the FSA ground-plane mirror reflection survives background subtraction (§9.3)");
    report.emit();
}
