//! §9.6 — Power consumption.
//!
//! The node power roll-up across activities and the energy-per-bit
//! comparison against mmTag. Paper anchors: 18 mW during localization and
//! downlink, 32 mW during uplink; 0.5 nJ/bit downlink (36 Mbps), 0.8 nJ/bit
//! uplink (40 Mbps), versus mmTag's 2.4 nJ/bit; the MCU (excluded, as in
//! the paper's accounting) would add 5.76 mW.

use milback_node::power::{NodeActivity, NodePowerModel};

fn main() {
    let main_span = milback_bench::spans::span("main");
    let model = NodePowerModel::milback_default();
    println!("==== §9.6 — Node power consumption ====");
    println!(
        "{:<42} {:>10} {:>12}",
        "activity", "power (mW)", "paper (mW)"
    );
    let rows: [(&str, NodeActivity, f64); 4] = [
        (
            "localization (10 kHz toggling)",
            NodeActivity::Localization {
                toggle_rate_hz: 10e3,
            },
            18.0,
        ),
        ("downlink reception", NodeActivity::Downlink, 18.0),
        (
            "uplink (switch drivers at full slew)",
            NodeActivity::Uplink,
            32.0,
        ),
        ("idle (detectors biased)", NodeActivity::Idle, f64::NAN),
    ];
    for (name, activity, paper) in rows {
        let p = model.power_w(activity) * 1e3;
        if paper.is_nan() {
            println!("{name:<42} {p:>10.2} {:>12}", "-");
        } else {
            println!("{name:<42} {p:>10.2} {paper:>12.1}");
        }
    }

    println!("\nEnergy efficiency:");
    let dl = model.energy_per_bit_j(NodeActivity::Downlink, 36e6) * 1e9;
    let ul = model.energy_per_bit_j(NodeActivity::Uplink, 40e6) * 1e9;
    println!("  downlink @36 Mbps: {dl:.2} nJ/bit (paper: 0.5)");
    println!("  uplink   @40 Mbps: {ul:.2} nJ/bit (paper: 0.8)");
    println!(
        "  mmTag    (uplink-only baseline): 2.40 nJ/bit — {:.1}× worse",
        2.4 / ul
    );

    let with_mcu = NodePowerModel::milback_default().with_mcu(5.76e-3);
    println!(
        "\nWith the MSP430-class MCU included (footnote 3): downlink {:.2} mW, uplink {:.2} mW",
        with_mcu.power_w(NodeActivity::Downlink) * 1e3,
        with_mcu.power_w(NodeActivity::Uplink) * 1e3
    );
    drop(main_span);
    milback_bench::spans::export_if_requested();
}
