//! Multi-hop relay recovery sweep: gap fraction × hop budget over the
//! gapped sector scene.
//!
//! Every cell places a `gap_fraction` share of the scene's nodes past AP
//! coverage (an 8 m ring one tag hop out, a 12 m ring two hops out) and
//! runs a relay-aware slotted-ALOHA campaign under the given transmission
//! budget. At `max_hops = 1` (direct only) the gap nodes burn attempts
//! and deliver nothing; at `2` the 8 m ring's packets ride one tag-to-tag
//! forward into coverage; at `3` the 12 m ring recovers too. The CSV
//! carries the recovery (`gap_delivery_rate`) next to its price — the
//! forwarding energy per relayed delivery and the per-hop latency — and
//! every column is deterministic at any `MILBACK_THREADS`.
//!
//! Run with: `cargo run --release -p milback-bench --bin net_relay`

use milback_bench::experiments::{
    extension_net_relay, relay_sweep_config, NetRelayPoint, RELAY_TAG_RANGE_M,
};
use milback_bench::runner::RunnerConfig;
use milback_bench::{reduced_mode, results_dir, Report, Series};

/// Sweep shape: enough nodes for both gap rings to populate at every
/// non-zero gap fraction, 12-slot frames to keep direct contention from
/// drowning the recovery signal, and a hop-budget axis that crosses the
/// two-ring geometry (1 = direct only, 2 = 8 m ring, 3 = both rings).
const NODES: usize = 32;
const NODES_REDUCED: usize = 12;
const SLOTS: usize = 12;
const FRAMES: usize = 32;
const FRAMES_REDUCED: usize = 6;
const PAYLOAD_BYTES: usize = 16;
const ROOT_SEED: u64 = 0x9E1A;
const HOP_BUDGETS: [usize; 3] = [1, 2, 3];

fn main() {
    let main_span = milback_bench::spans::span("main");
    let reduced = reduced_mode();
    let (gap_fractions, nodes, frames): (&[f64], usize, usize) = if reduced {
        (&[0.0, 0.5], NODES_REDUCED, FRAMES_REDUCED)
    } else {
        (&[0.0, 0.25, 0.5], NODES, FRAMES)
    };
    let cfg = RunnerConfig::from_env();
    let batch = extension_net_relay(
        gap_fractions,
        &HOP_BUDGETS,
        nodes,
        frames,
        PAYLOAD_BYTES,
        SLOTS,
        ROOT_SEED,
        &cfg,
    );
    let points: Vec<NetRelayPoint> = batch.oks().cloned().collect();
    if points.len() != gap_fractions.len() * HOP_BUDGETS.len() {
        for e in batch.results.iter().filter_map(|r| r.as_ref().err()) {
            eprintln!("net_relay cell failed: {e}");
        }
        std::process::exit(1);
    }

    let io_span = milback_bench::spans::span("io");
    let mut report = Report::new(
        "Extension net_relay",
        "gap-node delivery recovery vs hop budget, with forwarding energy per relayed packet",
        "max hops",
        "gap delivery rate / relay energy",
    );
    for &gap in gap_fractions {
        let mut recovery = Series::new(format!("gap delivery (gap={gap})"));
        for p in points.iter().filter(|p| p.gap_fraction == gap) {
            recovery.push_opt(p.max_hops as f64, p.gap_delivery_rate);
        }
        report.add_series(recovery);
    }
    if let Some(p) = points
        .iter()
        .filter(|p| p.relayed > 0)
        .max_by_key(|p| (p.gap_delivered, p.max_hops))
    {
        report.note(format!(
            "gap={} at {} hops recovered a gap delivery rate of {:.2} ({} relayed packets) for \
             {:.2e} J of forwarding energy per delivery and {:.1} µs of extra latency",
            p.gap_fraction,
            p.max_hops,
            p.gap_delivery_rate.unwrap_or(0.0),
            p.relayed,
            p.relay_energy_per_delivered_j.unwrap_or(0.0),
            p.mean_relay_latency_s.unwrap_or(0.0) * 1e6,
        ));
    }
    let relay = relay_sweep_config(2);
    report.note(format!(
        "{SLOTS} slots/frame, {frames} frames, {PAYLOAD_BYTES}-byte payloads, {nodes} nodes, \
         AP coverage {} m, tag range {RELAY_TAG_RANGE_M} m, {} dB/hop SNR penalty, seed {ROOT_SEED:#x}",
        relay.coverage.ap_range_m, relay.hop_snr_penalty_db,
    ));
    print!("{}", report.render());

    // Hand-rolled CSV, same hygiene as the other anchors: undefined cells
    // are empty (never NaN/inf), and reduced runs never touch the anchor.
    if !reduced {
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join("extension_net_relay.csv");
            match std::fs::write(&path, to_csv(&points)) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    } else {
        // CI validates the reduced schema from a scratch copy instead.
        println!("{}", to_csv(&points));
    }
    drop(io_span);
    drop(main_span);
    milback_bench::spans::export_if_requested();
}

/// The full sweep schema, one row per (gap fraction, hop budget) cell.
fn to_csv(points: &[NetRelayPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "gap_fraction,max_hops,nodes,gap_nodes,attempts,delivered,delivery_rate,\
         gap_attempts,gap_delivered,gap_delivery_rate,relayed,forwarded,mean_relay_hops,\
         relay_energy_per_delivered_j,mean_relay_latency_s\n",
    );
    for p in points {
        let opt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.gap_fraction,
            p.max_hops,
            p.nodes,
            p.gap_nodes,
            p.attempts,
            p.delivered,
            opt(p.delivery_rate),
            p.gap_attempts,
            p.gap_delivered,
            opt(p.gap_delivery_rate),
            p.relayed,
            p.forwarded,
            opt(p.mean_relay_hops),
            opt(p.relay_energy_per_delivered_j),
            opt(p.mean_relay_latency_s),
        );
    }
    out
}
