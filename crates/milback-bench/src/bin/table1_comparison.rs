//! Table 1 — Comparison with state-of-the-art mmWave backscatter systems.
//!
//! The capability matrix is *generated from the code*: each system
//! implements `BackscatterSystem` and a capability registers as "Yes"
//! exactly when the corresponding probe succeeds. Below the matrix we add
//! quantified context the paper makes in prose (rates, energy, range).

use milback_baselines::{
    capability_table, render_table, BackscatterSystem, MilBackSystem, Millimetro, MmTag,
    OmniScatter,
};

fn main() {
    let main_span = milback_bench::spans::span("main");
    let mmtag = MmTag::published();
    let millimetro = Millimetro::published();
    let omniscatter = OmniScatter::published();
    let milback = MilBackSystem::published();

    let rows = capability_table(&[&mmtag, &millimetro, &omniscatter, &milback]);
    println!("==== Table 1 — mmWave backscatter systems ====");
    print!("{}", render_table(&rows));

    println!("\nQuantified context:");
    println!(
        "  energy/bit uplink: mmTag {:.1} nJ/bit vs MilBack {:.1} nJ/bit ({}× better, §9.6)",
        mmtag.uplink_energy_per_bit_j().unwrap() * 1e9,
        milback.uplink_energy_per_bit_j().unwrap() * 1e9,
        (mmtag.uplink_energy_per_bit_j().unwrap() / milback.uplink_energy_per_bit_j().unwrap())
            .round()
    );
    println!(
        "  uplink SNR at 4 m / 10 Mbps: mmTag {:.1} dB, MilBack {:.1} dB",
        mmtag.uplink_snr_db(4.0, 10e6).unwrap(),
        milback.uplink_snr_db(4.0, 10e6).unwrap()
    );
    println!(
        "  OmniScatter max bit rate: {:.0} kbps (one symbol per radar chirp) — no 10 Mbps mode exists",
        omniscatter.max_symbol_rate_hz() / 1e3
    );
    println!(
        "  Millimetro range resolution: {:.2} m (250 MHz sweep) vs MilBack {:.2} m (3 GHz sweep)",
        millimetro.range_resolution_m(),
        mmwave_rf::propagation::range_resolution_m(3e9)
    );
    println!(
        "  MilBack downlink SINR at 10 m: {:.1} dB — the only system with a downlink at all",
        milback.downlink_sinr_db(10.0).unwrap()
    );
    drop(main_span);
    milback_bench::spans::export_if_requested();
}
