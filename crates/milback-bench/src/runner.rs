//! Trial-parallel Monte-Carlo experiment runner with deterministic
//! per-trial RNG streams.
//!
//! Every figure/ablation/extension experiment in this crate is an
//! embarrassingly parallel sweep: N independent trials, each consuming
//! Gaussian noise draws. The historical pattern — one shared
//! [`GaussianSource`] threaded through nested loops — had two defects:
//!
//! 1. **Serial wall-clock**: trials ran one-by-one regardless of cores.
//! 2. **Ordering fragility**: every trial's noise depended on how many
//!    draws all *earlier* trials made, so adding a placement to a sweep
//!    silently reshuffled every later trial's randomness.
//!
//! [`run_trials`] fixes both. Each trial gets its own RNG stream derived
//! from `(root_seed, trial_idx)` by a SplitMix64-style golden-ratio mix
//! feeding [`GaussianSource::new`] (itself SplitMix64-seeded xoshiro256++),
//! so trial `i`'s stream is a pure function of the root seed and its index.
//! Trials are scheduled over the chunked-thread machinery in
//! [`mmwave_sigproc::parallel`] with one result slot per trial; because the
//! streams are independent and each result lands in its own slot, the
//! output is **bit-for-bit identical at any thread count** and identical to
//! a serial `for` loop over the same closures.

use mmwave_sigproc::parallel;
use mmwave_sigproc::random::GaussianSource;

/// Scheduling configuration for [`run_trials`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Worker budget. `1` runs trials inline on the caller; results are
    /// identical either way.
    pub threads: usize,
}

impl RunnerConfig {
    /// Respects `MILBACK_THREADS` (via [`parallel::max_threads`]), else the
    /// machine's available parallelism.
    pub fn from_env() -> Self {
        Self {
            threads: parallel::max_threads(),
        }
    }

    /// Single-threaded (the timing baseline).
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// An explicit worker budget (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

/// The seed for one trial's RNG stream: the root seed XOR'd with the trial
/// index spread by the SplitMix64 golden-ratio increment. The multiply
/// decorrelates neighbouring indices before [`GaussianSource::new`]'s own
/// SplitMix64 expansion; the XOR keeps trial 0 of different roots distinct.
pub fn trial_seed(root_seed: u64, trial_idx: usize) -> u64 {
    root_seed ^ (trial_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The independent RNG stream for one trial.
pub fn trial_rng(root_seed: u64, trial_idx: usize) -> GaussianSource {
    GaussianSource::new(trial_seed(root_seed, trial_idx))
}

/// Runs `n_trials` independent Monte-Carlo trials, each with its own
/// deterministic RNG stream, scheduled over `cfg.threads` workers.
///
/// The result vector is in trial order and bit-for-bit independent of the
/// thread count. The closure receives `(trial_idx, rng)`; it must derive
/// all its randomness from that RNG (and all other inputs from `trial_idx`)
/// for the determinism guarantee to hold.
pub fn run_trials<T, F>(n_trials: usize, root_seed: u64, cfg: &RunnerConfig, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut GaussianSource) -> T + Sync,
{
    // Host-side wall-clock span only — never visible to the trials.
    let _span = crate::spans::span("run_trials");
    let mut slots: Vec<Option<T>> = (0..n_trials).map(|_| None).collect();
    parallel::for_each_chunk(&mut slots, 1, cfg.threads, |idx, chunk| {
        let mut rng = trial_rng(root_seed, idx);
        chunk[0] = Some(trial(idx, &mut rng));
    });
    slots
        .into_iter()
        .map(|s| s.expect("runner filled every trial slot"))
        .collect()
}

/// [`run_trials`] with per-worker scratch state: `init` builds one scratch
/// value per worker thread (one total in the serial path), and each trial
/// receives `&mut` access to its worker's scratch alongside the usual
/// `(trial_idx, rng)`.
///
/// This is how the batched kernels get fed without per-trial allocation:
/// `init` typically builds an [`milback_ap::FmcwScratch`] /
/// [`milback_node::NodeScratch`] pair which then amortizes across every
/// trial the worker runs. The determinism contract extends to the scratch:
/// the trial must not let incoming scratch *contents* influence its output
/// (buffers are overwritten before use), otherwise results would depend on
/// the trial→worker assignment and the thread count.
pub fn run_trials_with<T, S, I, F>(
    n_trials: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
    init: I,
    trial: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut GaussianSource) -> T + Sync,
{
    let _span = crate::spans::span("run_trials");
    let mut slots: Vec<Option<T>> = (0..n_trials).map(|_| None).collect();
    parallel::for_each_chunk_with(&mut slots, 1, cfg.threads, init, |scratch, idx, chunk| {
        let mut rng = trial_rng(root_seed, idx);
        chunk[0] = Some(trial(scratch, idx, &mut rng));
    });
    slots
        .into_iter()
        .map(|s| s.expect("runner filled every trial slot"))
        .collect()
}

/// The outcome of a fallible trial batch: per-trial `Result`s in trial
/// order, with counting/reporting helpers so experiment reports can print
/// honest `ok/failed` statistics instead of silently shrinking the sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialBatch<T, E> {
    /// Per-trial outcomes, in trial order.
    pub results: Vec<Result<T, E>>,
}

impl<T, E> TrialBatch<T, E> {
    /// Number of trials that succeeded.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of trials that failed.
    pub fn failed_count(&self) -> usize {
        self.results.len() - self.ok_count()
    }

    /// `"38 ok / 2 failed (40 trials)"` — for report notes.
    pub fn summary(&self) -> String {
        format!(
            "{} ok / {} failed ({} trials)",
            self.ok_count(),
            self.failed_count(),
            self.results.len()
        )
    }

    /// Successful results, in trial order.
    pub fn oks(&self) -> impl Iterator<Item = &T> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// Failures with their trial indices, in trial order.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &E)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }
}

/// [`run_trials`] for fallible trials: failures are collected per trial
/// instead of being swallowed, so reports can state how many trials the
/// statistics actually cover.
pub fn run_fallible<T, E, F>(
    n_trials: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
    trial: F,
) -> TrialBatch<T, E>
where
    T: Send,
    E: Send,
    F: Fn(usize, &mut GaussianSource) -> Result<T, E> + Sync,
{
    TrialBatch {
        results: run_trials(n_trials, root_seed, cfg, trial),
    }
}

/// [`run_trials_with`] for fallible trials — the scratch-amortizing
/// counterpart of [`run_fallible`].
pub fn run_fallible_with<T, E, S, I, F>(
    n_trials: usize,
    root_seed: u64,
    cfg: &RunnerConfig,
    init: I,
    trial: F,
) -> TrialBatch<T, E>
where
    T: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut GaussianSource) -> Result<T, E> + Sync,
{
    TrialBatch {
        results: run_trials_with(n_trials, root_seed, cfg, init, trial),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..64).map(|i| trial_seed(0xF00D, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "seed collision");
        assert_eq!(
            seeds,
            (0..64).map(|i| trial_seed(0xF00D, i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(10, 7, &RunnerConfig::with_threads(4), |i, _| i * i);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_explicit_serial_loop() {
        let trial = |i: usize, rng: &mut GaussianSource| -> (usize, f64) {
            (i, (0..50).map(|_| rng.standard()).sum())
        };
        let serial: Vec<(usize, f64)> = (0..23)
            .map(|i| {
                let mut rng = trial_rng(0xABCD, i);
                trial(i, &mut rng)
            })
            .collect();
        for threads in [1, 2, 4, 8] {
            let got = run_trials(23, 0xABCD, &RunnerConfig::with_threads(threads), trial);
            assert_eq!(got, serial, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn scratch_variant_matches_plain_runner_at_any_thread_count() {
        let trial = |i: usize, rng: &mut GaussianSource| -> f64 {
            i as f64 + (0..20).map(|_| rng.standard()).sum::<f64>()
        };
        let plain = run_trials(17, 0x5C4A, &RunnerConfig::serial(), trial);
        for threads in [1, 2, 4] {
            let got = run_trials_with(
                17,
                0x5C4A,
                &RunnerConfig::with_threads(threads),
                Vec::<f64>::new,
                |scratch, i, rng| {
                    // Scratch is reused across a worker's trials; contents
                    // must never leak into the result.
                    scratch.clear();
                    scratch.extend((0..20).map(|_| rng.standard()));
                    i as f64 + scratch.iter().sum::<f64>()
                },
            );
            assert_eq!(got, plain, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn fallible_batch_counts_and_iterates() {
        let batch = run_fallible(10, 1, &RunnerConfig::serial(), |i, _| {
            if i % 3 == 0 {
                Err(format!("trial {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(batch.ok_count(), 6);
        assert_eq!(batch.failed_count(), 4);
        assert_eq!(batch.summary(), "6 ok / 4 failed (10 trials)");
        assert_eq!(
            batch.oks().copied().collect::<Vec<_>>(),
            vec![1, 2, 4, 5, 7, 8]
        );
        assert_eq!(
            batch.failures().map(|(i, _)| i).collect::<Vec<_>>(),
            vec![0, 3, 6, 9]
        );
    }

    #[test]
    fn zero_trials_is_fine() {
        let out: Vec<u8> = run_trials(0, 0, &RunnerConfig::from_env(), |_, _| 0u8);
        assert!(out.is_empty());
    }
}
