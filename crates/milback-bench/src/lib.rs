//! # milback-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md's experiment index), plus criterion benches over the hot DSP
//! paths. This library holds the shared reporting utilities so every
//! binary prints the same kind of aligned, self-describing output and can
//! drop CSV files next to the binary run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod hostinfo;
pub mod logging;
pub mod metrics_io;
pub mod runner;
pub mod spans;

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// True when `MILBACK_REDUCED` is set (to anything but `0`): experiment
/// binaries shrink their grids/trial counts and print without overwriting
/// the full-scale CSV anchors under `results/` — the mode `scripts/ci.sh`
/// uses to exercise a figure binary quickly.
pub fn reduced_mode() -> bool {
    std::env::var("MILBACK_REDUCED")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// A labelled series of (x, y) points — one curve of a figure. A `None`
/// y-value is an honest "undefined here" (e.g. energy per delivered packet
/// when nothing delivered): it renders as a dash and an *empty* CSV cell,
/// never a `NaN`/`inf` token.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (legend entry).
    pub label: String,
    /// The points; `None` marks an undefined y at that x.
    pub points: Vec<(f64, Option<f64>)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, Some(y)));
    }

    /// Appends a point whose y may be undefined.
    pub fn push_opt(&mut self, x: f64, y: Option<f64>) {
        self.points.push((x, y));
    }
}

/// A figure/table report: header, axis names, several series, and free-form
/// observation lines comparing against the paper.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id, e.g. "Figure 12a".
    pub id: String,
    /// One-line description.
    pub title: String,
    /// X-axis name (with units).
    pub x_label: String,
    /// Y-axis name (with units).
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Paper-vs-measured observations appended at the bottom.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Adds an observation note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the report as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==== {} — {} ====", self.id, self.title);
        if self.series.is_empty() {
            let _ = writeln!(out, "(no series)");
        } else {
            // Header row.
            let _ = write!(out, "{:>14}", self.x_label);
            for s in &self.series {
                let _ = write!(out, " {:>18}", s.label);
            }
            let _ = writeln!(out, "    [{}]", self.y_label);
            // Series are expected to share the x grid; missing points print
            // as blanks.
            let xs: Vec<f64> = self.series[0].points.iter().map(|p| p.0).collect();
            for (i, &x) in xs.iter().enumerate() {
                let _ = write!(out, "{x:>14.4}");
                for s in &self.series {
                    match s.points.get(i) {
                        Some(&(_, Some(y))) => {
                            let _ = write!(out, " {y:>18.4}");
                        }
                        _ => {
                            let _ = write!(out, " {:>18}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "  • {n}");
        }
        out
    }

    /// Renders as CSV (x, then one column per series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label.replace(',', ";"));
        for s in &self.series {
            let _ = write!(out, ",{}", s.label.replace(',', ";"));
        }
        let _ = writeln!(out);
        if let Some(first) = self.series.first() {
            for (i, &(x, _)) in first.points.iter().enumerate() {
                let _ = write!(out, "{x}");
                for s in &self.series {
                    match s.points.get(i) {
                        Some(&(_, Some(y))) => {
                            let _ = write!(out, ",{y}");
                        }
                        _ => {
                            let _ = write!(out, ",");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// Prints to stdout and writes a CSV under `results/` (best-effort; a
    /// read-only filesystem only loses the CSV copy).
    pub fn emit(&self) {
        print!("{}", self.render());
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_ok() {
            let file = dir.join(format!(
                "{}.csv",
                self.id.to_lowercase().replace([' ', '/'], "_")
            ));
            let _ = fs::write(file, self.to_csv());
        }
    }

    /// [`Report::emit`] that skips the CSV write in [`reduced_mode`], so
    /// quick CI runs never overwrite the full-scale anchors under
    /// `results/`.
    pub fn emit_respecting_reduced(&self) {
        if reduced_mode() {
            print!("{}", self.render());
        } else {
            self.emit();
        }
    }
}

/// Where experiment CSVs land: `<workspace>/results`.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/milback-bench → workspace root is ../..
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Sweeps a closure over a grid, collecting a series.
pub fn sweep(label: &str, grid: &[f64], mut f: impl FnMut(f64) -> f64) -> Series {
    let mut s = Series::new(label);
    for &x in grid {
        s.push(x, f(x));
    }
    s
}

/// An inclusive linear grid with `n` points.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let g = linspace(1.0, 8.0, 8);
        assert_eq!(g.len(), 8);
        assert_eq!(g[0], 1.0);
        assert_eq!(g[7], 8.0);
    }

    #[test]
    fn sweep_collects_points() {
        let s = sweep("sq", &[1.0, 2.0, 3.0], |x| x * x);
        assert_eq!(
            s.points,
            vec![(1.0, Some(1.0)), (2.0, Some(4.0)), (3.0, Some(9.0))]
        );
    }

    #[test]
    fn report_renders_all_parts() {
        let mut r = Report::new("Figure X", "demo", "x (m)", "y (dB)");
        r.add_series(sweep("a", &[1.0, 2.0], |x| x));
        r.add_series(sweep("b", &[1.0, 2.0], |x| -x));
        r.note("shape matches");
        let text = r.render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("x (m)"));
        assert!(text.contains("shape matches"));
        let csv = r.to_csv();
        assert!(csv.starts_with("x (m),a,b"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn undefined_points_render_dash_and_empty_csv_cell() {
        let mut r = Report::new("F", "t", "x", "y");
        let mut s = Series::new("e");
        s.push(1.0, 2.5);
        s.push_opt(2.0, None);
        r.add_series(s);
        let text = r.render();
        assert!(text.contains('-'), "undefined y renders as a dash");
        let csv = r.to_csv();
        assert!(
            csv.contains("\n2,\n"),
            "undefined y is an empty cell: {csv}"
        );
        assert!(!csv.contains("NaN") && !csv.contains("inf"));
    }

    #[test]
    fn ragged_series_render_blanks() {
        let mut r = Report::new("F", "t", "x", "y");
        r.add_series(sweep("long", &[1.0, 2.0, 3.0], |x| x));
        r.add_series(sweep("short", &[1.0], |x| x));
        let text = r.render();
        assert!(text.contains('-'));
    }
}
