//! Host-side wall-clock profiling spans.
//!
//! A span times a named stage of harness work — `setup`, `trials`, `io`,
//! a DSP hot path — on the **host** clock, accumulated into a global
//! registry and exportable as a tab-separated file (via
//! `MILBACK_SPAN_FILE`) that `all_experiments` folds into its per-stage
//! timing table and `bench_smoke` embeds in `BENCH_experiments.json`.
//!
//! Spans live entirely outside the simulation: they never touch simulated
//! time, trial RNG streams, or campaign state, so they cannot perturb a
//! result — the wall clock is read on the host side of the probe boundary
//! only, exactly as the telemetry non-perturbation contract requires. In
//! a telemetry-off build (`--no-default-features`) [`span`] returns an
//! inert guard without reading the clock at all.

use std::sync::Mutex;
use std::time::Instant;

/// Accumulated statistics of one named span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name (stage label).
    pub name: String,
    /// Total wall-clock time across all entries, nanoseconds.
    pub total_ns: u128,
    /// Times the span was entered.
    pub count: u64,
}

/// First-entry-ordered accumulation: `Vec` keeps the report order stable
/// and deterministic (registries hold a handful of names; linear scan).
static REGISTRY: Mutex<Vec<(String, u128, u64)>> = Mutex::new(Vec::new());

/// An RAII span: created by [`span`], accumulates its elapsed wall time
/// into the global registry when dropped.
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
pub struct SpanGuard {
    name: &'static str,
    started: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let elapsed_ns = started.elapsed().as_nanos();
        let mut reg = match REGISTRY.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match reg.iter_mut().find(|(n, _, _)| n == self.name) {
            Some((_, total, count)) => {
                *total += elapsed_ns;
                *count += 1;
            }
            None => reg.push((self.name.to_string(), elapsed_ns, 1)),
        }
    }
}

/// Opens a wall-clock span over the enclosing scope.
///
/// ```
/// let _span = milback_bench::spans::span("trials");
/// // ... stage work ...
/// // drop accumulates into the registry
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        started: cfg!(feature = "telemetry").then(Instant::now),
    }
}

/// A snapshot of every span recorded so far, in first-entry order.
pub fn snapshot() -> Vec<SpanStat> {
    let reg = match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    reg.iter()
        .map(|(name, total_ns, count)| SpanStat {
            name: name.clone(),
            total_ns: *total_ns,
            count: *count,
        })
        .collect()
}

/// Clears the registry (tests and multi-phase binaries).
pub fn reset() {
    let mut reg = match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    reg.clear();
}

/// Serializes a snapshot as the span-file format: one
/// `name<TAB>total_ns<TAB>count` line per span.
pub fn to_span_file(stats: &[SpanStat]) -> String {
    let mut out = String::new();
    for s in stats {
        out.push_str(&format!("{}\t{}\t{}\n", s.name, s.total_ns, s.count));
    }
    out
}

/// Parses the span-file format back (inverse of [`to_span_file`]);
/// malformed lines are skipped rather than fatal, so a partially written
/// file still yields its good rows.
pub fn parse_span_file(text: &str) -> Vec<SpanStat> {
    text.lines()
        .filter_map(|line| {
            let mut parts = line.split('\t');
            let name = parts.next()?.to_string();
            let total_ns = parts.next()?.parse().ok()?;
            let count = parts.next()?.parse().ok()?;
            Some(SpanStat {
                name,
                total_ns,
                count,
            })
        })
        .collect()
}

/// If `MILBACK_SPAN_FILE` names a path, writes the current snapshot there
/// (best-effort). Experiment binaries call this once before exiting so a
/// parent (`all_experiments`) can collect their per-stage breakdown.
pub fn export_if_requested() {
    if let Ok(path) = std::env::var("MILBACK_SPAN_FILE") {
        if !path.is_empty() {
            let _ = std::fs::write(path, to_span_file(&snapshot()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is global and tests run concurrently, so each test
    // uses its own unique span names rather than asserting on the full
    // snapshot.

    #[cfg(feature = "telemetry")]
    #[test]
    fn spans_accumulate_totals_and_counts() {
        for _ in 0..3 {
            let _g = span("test_spans_accumulate");
            std::hint::black_box(0u64);
        }
        let stats = snapshot();
        let s = stats
            .iter()
            .find(|s| s.name == "test_spans_accumulate")
            .expect("span recorded");
        assert_eq!(s.count, 3);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn spans_are_inert_when_telemetry_is_off() {
        {
            let _g = span("test_spans_inert");
        }
        assert!(
            !snapshot().iter().any(|s| s.name == "test_spans_inert"),
            "telemetry-off spans must not record"
        );
    }

    #[test]
    fn span_file_round_trips() {
        let stats = vec![
            SpanStat {
                name: "setup".into(),
                total_ns: 1234,
                count: 1,
            },
            SpanStat {
                name: "trials".into(),
                total_ns: 987_654_321,
                count: 12,
            },
        ];
        assert_eq!(parse_span_file(&to_span_file(&stats)), stats);
        // Malformed lines are skipped, not fatal.
        let parsed = parse_span_file("setup\t1\t1\ngarbage line\nio\t2\t1\n");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].name, "io");
    }
}
