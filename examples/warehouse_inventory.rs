//! Warehouse inventory scenario: many cheap tags on shelves, an AP that
//! sweeps its beam across them, localizes each tag, and collects an
//! inventory record over the uplink — the IoT deployment pattern the
//! paper's abstract targets ("devices with limited energy sources").
//!
//! Exercises multi-node SDM separability, per-tag localization and uplink,
//! and aggregates a success/energy report.
//!
//! Run with: `cargo run --release --example warehouse_inventory`

use milback::core::{LocalizationPipeline, Network, Scene, SystemConfig};
use milback::node::{NodeActivity, NodePowerModel};
use milback::sigproc::random::GaussianSource;

fn main() {
    let config = SystemConfig::milback_default();
    let mut rng = GaussianSource::new(0x1A6);

    // Six tags across two shelf rows, 3–7 m out, ±35° across the aisle.
    let placements: Vec<(f64, f64, f64)> = vec![
        // (distance m, azimuth deg, orientation deg)
        (3.0, -35.0, 8.0),
        (3.5, -15.0, -12.0),
        (4.0, 5.0, 15.0),
        (5.5, 20.0, -8.0),
        (6.0, 35.0, 10.0),
        (7.0, -5.0, 5.0),
    ];

    let mut scene = Scene::indoor(3.0, 0.0);
    scene.nodes.clear();
    for &(r, az, orient) in &placements {
        scene = scene.with_node_at(r, az.to_radians(), orient.to_radians());
    }
    let network = Network::new(config.clone(), scene.clone()).unwrap();

    println!(
        "Warehouse inventory: {} tags on shelves\n",
        network.node_count()
    );

    // SDM separability matrix.
    println!("pairwise SDM beam-isolation margins (dB):");
    for i in 0..network.node_count() {
        let mut row = format!("  tag {i}:");
        for j in 0..network.node_count() {
            if i == j {
                row.push_str("     -");
            } else {
                row.push_str(&format!(" {:>5.1}", network.sdm_margin_db(i, j)));
            }
        }
        println!("{row}");
    }

    // Inventory round: localize + read each tag.
    println!(
        "\n{:>4} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "tag", "true r", "est r", "true az", "est az", "UL SNR", "BER"
    );
    let mut ok = 0;
    let payloads: Vec<Vec<u8>> = (0..network.node_count())
        .map(|i| format!("SKU-{i:04};qty=42;batt=93%").into_bytes())
        .collect();
    let reports = network.uplink_round(&payloads, &mut rng).expect("round");

    for (idx, report) in reports.iter().enumerate() {
        let gt = scene.ground_truth(idx);
        // Localize this tag with the beam steered at it.
        let mut view = scene.clone();
        view.nodes.swap(0, idx);
        view.nodes.truncate(1);
        view.ap.boresight_rad = view.ap.position.bearing_to(view.nodes[0].position);
        let pipeline = LocalizationPipeline::new(config.clone(), view.clone()).unwrap();
        let fix = pipeline.localize(&mut rng);
        let (est_r, est_az) = match &fix {
            Ok(f) => (
                f.range_m,
                (f.angle_rad + view.ap.boresight_rad).to_degrees(),
            ),
            Err(_) => (f64::NAN, f64::NAN),
        };
        let delivered = report.outcome.decoded == payloads[idx];
        if delivered && fix.is_ok() {
            ok += 1;
        }
        println!(
            "{idx:>4} {:>8.2} {est_r:>8.2} {:>8.1}° {est_az:>8.1}° {:>8.1} {:>8.1e}",
            gt.range_m,
            (gt.azimuth_rad + 0.0).to_degrees(),
            report.outcome.snr_db,
            report.outcome.ber
        );
    }

    // Fleet economics: what a year of hourly inventory costs each tag.
    let power = NodePowerModel::milback_default();
    let reads_per_day = 24.0;
    let seconds_per_read = 0.01; // preamble + ~50 kbit payload at 40 Mbps
    let joules_per_year =
        power.power_w(NodeActivity::Uplink) * seconds_per_read * reads_per_day * 365.0;
    println!(
        "\n{ok}/{} tags localized and read successfully",
        network.node_count()
    );
    println!(
        "energy per tag for hourly reads, one year: {joules_per_year:.2} J — \
         ~{:.4}% of a CR2032 coin cell",
        joules_per_year / 2340.0 * 100.0
    );
}
