//! Single-shot multi-node ranging: three tags toggling with distinct
//! Doppler signatures are all localized from ONE 24-chirp capture —
//! composing the paper's toggling-modulation primitive into a mode it only
//! sketches (§7's SDM note).
//!
//! Run with: `cargo run --release --example doppler_inventory`

use milback::core::network::{localize_all_doppler, DopplerSignature};
use milback::core::{Network, Scene, SystemConfig};
use milback::sigproc::random::GaussianSource;

fn main() {
    let scene = Scene::single_node(3.0, 12f64.to_radians())
        .with_node_at(5.0, 0.15, 0.2)
        .with_node_at(7.0, -0.12, -0.15);
    let network = Network::new(SystemConfig::milback_default(), scene.clone()).unwrap();
    let n_chirps = 24;

    println!("Single-capture multi-node ranging ({n_chirps} chirps)\n");
    println!(
        "{:>5} {:>16} {:>13} {:>9} {:>9}",
        "node", "toggle period", "Doppler row", "true r", "est r"
    );

    let mut rng = GaussianSource::new(7);
    let fixes = localize_all_doppler(&network, n_chirps, &mut rng).expect("capture");
    for &(idx, range) in &fixes {
        let sig = DopplerSignature::for_node(idx);
        let gt = scene.ground_truth(idx);
        println!(
            "{idx:>5} {:>13} ch {:>13} {:>9.2} {:>9.2}",
            sig.period_chirps,
            sig.doppler_row(n_chirps),
            gt.range_m,
            range
        );
    }
    println!(
        "\nall {} tags ranged from one chirp train — no beam scheduling, no\nper-node captures; each tag's toggle period is its identity (as in\nMillimetro) and its Doppler bin is its channel.",
        fixes.len()
    );
}
