//! VR/AR headset scenario — the application the paper's introduction
//! motivates: a headset needs *both* directions of traffic (pose uplink,
//! content/control downlink) plus continuous position and orientation
//! tracking, on a power budget no active mmWave radio can meet.
//!
//! Simulates a headset moving along an arc in front of the AP: each frame
//! re-localizes the node, re-estimates orientation, re-plans OAQFM
//! carriers, and exchanges a pose packet (uplink) and a control packet
//! (downlink).
//!
//! Run with: `cargo run --release --example vr_headset`

use milback::core::{LinkSimulator, LocalizationPipeline, Scene, SystemConfig};
use milback::rf::channel::{ApFrontend, NodePose, Vec2};
use milback::sigproc::random::GaussianSource;

fn main() {
    let config = SystemConfig::milback_default();
    let mut rng = GaussianSource::new(0x0E4D);
    let frames = 12;

    println!("VR headset tracking + two-way traffic ({frames} frames)\n");
    println!(
        "{:>5} {:>8} {:>8} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "frame", "true r", "est r", "true az", "est az", "orient est", "UL BER", "DL BER"
    );

    let mut tracking_errors = Vec::new();
    for frame in 0..frames {
        // Headset walks an arc from −15° to +15° at 2.5–3.5 m, slowly
        // turning its head (orientation sweeps ±10°).
        let t = frame as f64 / (frames - 1) as f64;
        let az = (-15.0 + 30.0 * t).to_radians();
        let r = 2.5 + t * 1.0;
        let orientation = (10.0 - 20.0 * t).to_radians();
        let position = Vec2::from_polar(r, az);
        let facing = std::f64::consts::PI + az + orientation;

        let mut scene = Scene::indoor(r, 0.0);
        scene.nodes = vec![NodePose {
            position,
            facing_rad: facing,
        }];
        // The AP steers its horns at the last known position (here: truth,
        // as the tracker would converge to).
        scene.ap = ApFrontend {
            boresight_rad: az,
            ..ApFrontend::milback_default()
        };

        let pipeline = LocalizationPipeline::new(config.clone(), scene.clone()).unwrap();
        let gt = scene.ground_truth(0);

        let fix = match pipeline.localize(&mut rng) {
            Ok(f) => f,
            Err(e) => {
                println!("{frame:>5}  localization failed: {e}");
                continue;
            }
        };
        let orient = pipeline.orient_at_ap(&mut rng).unwrap_or(gt.incidence_rad);

        // Communicate using the sensed orientation for carrier planning.
        let sim = LinkSimulator::new(config.clone(), scene).unwrap();
        let pose_packet: Vec<u8> = rng.bytes(64); // 6-DoF pose + IMU deltas
        let up = sim.uplink(&pose_packet, &mut rng).expect("uplink");
        let control: Vec<u8> = rng.bytes(32); // haptics/control downlink
        let down = sim.downlink(&control, &mut rng).expect("downlink");

        // AP-frame azimuth → absolute azimuth for reporting.
        let est_az_abs = fix.angle_rad + az;
        tracking_errors
            .push(((fix.range_m - gt.range_m).powi(2) + (est_az_abs - az).powi(2) * r * r).sqrt());

        println!(
            "{frame:>5} {r:>8.2} {:>8.2} {:>8.1}° {:>8.1}° {:>9.1}° {:>10.1e} {:>9.1e}",
            fix.range_m,
            az.to_degrees(),
            est_az_abs.to_degrees(),
            orient.to_degrees(),
            up.ber,
            down.ber
        );
    }

    let rms: f64 =
        (tracking_errors.iter().map(|e| e * e).sum::<f64>() / tracking_errors.len() as f64).sqrt();
    println!(
        "\nRMS position-tracking error across the walk: {:.1} cm",
        rms * 100.0
    );
    println!("node power during this workload: 18 mW listening / 32 mW talking —");
    println!("roughly 100× below an active mmWave radio's budget, which is the paper's point.");
}
