//! Protocol walkthrough: builds MilBack packets (Fig 8), shows the Field-1
//! mode signalling the node decodes from raw detector bursts, the framing
//! layer's corruption detection, and the airtime/efficiency arithmetic.
//!
//! Run with: `cargo run --release --example protocol_trace`

use milback::ap::waveform::{FmcwConfig, LinkDirection};
use milback::core::protocol::{Field1Detector, Packet, FIELD1_GAP_S};

fn main() {
    let fmcw = FmcwConfig::milback_default();
    println!("MilBack packet structure (Fig 8)\n");

    for packet in [
        Packet::uplink(b"node telemetry: 48 bytes of sensor readings....".to_vec()),
        Packet::downlink(b"AP command: set-report-interval=100ms".to_vec()),
    ] {
        let dir = packet.direction;
        println!(
            "── {dir:?} packet, {} payload bytes ──",
            packet.payload.len()
        );
        println!(
            "  Field 1: {} triangular chirps of {:.0} µs{}",
            dir.field1_chirp_count(),
            fmcw.field1_chirp_s * 1e6,
            if dir == LinkDirection::Downlink {
                format!(
                    " (with a {:.0} µs gap — the downlink marker)",
                    FIELD1_GAP_S * 1e6
                )
            } else {
                String::new()
            }
        );
        println!(
            "  Field 2: 5 sawtooth chirps of {:.0} µs at {:.0} µs spacing (localization)",
            fmcw.field2_chirp_s * 1e6,
            fmcw.chirp_interval_s * 1e6
        );
        let sym_rate = 18e6;
        println!(
            "  preamble {:.0} µs + payload {:.0} µs at {:.0} Msym/s → efficiency {:.1}%",
            packet.preamble_duration_s(&fmcw) * 1e6,
            packet.payload_duration_s(sym_rate) * 1e6,
            sym_rate / 1e6,
            packet.efficiency(&fmcw, sym_rate) * 100.0
        );

        // Wire framing round-trip.
        let wire = packet.to_bytes();
        println!(
            "  wire frame: {} bytes (magic|dir|len|payload|checksum)",
            wire.len()
        );
        let parsed = Packet::from_bytes(wire.clone()).expect("frame parses");
        assert_eq!(parsed, packet);

        // Bit-flip detection.
        let mut corrupted = wire.to_vec();
        corrupted[5] ^= 0x40;
        match Packet::from_bytes(corrupted.into()) {
            Err(e) => println!("  corrupted frame rejected: {e}"),
            Ok(_) => unreachable!("corruption must be caught"),
        }
        println!();
    }

    // The node's Field-1 burst counter in action.
    println!("Node-side mode detection from detector bursts:");
    let detector = Field1Detector::new(0.5, 5);
    let uplink_trace = bursts(3, 45, 10);
    let downlink_trace = bursts(2, 45, 45);
    println!(
        "  3 bursts → {:?}",
        detector
            .detect_direction(&uplink_trace)
            .expect("uplink signal")
    );
    println!(
        "  2 bursts + gap → {:?}",
        detector
            .detect_direction(&downlink_trace)
            .expect("downlink signal")
    );
}

/// Builds a synthetic detector trace with `n` power bursts.
fn bursts(n: usize, width: usize, gap: usize) -> Vec<f64> {
    let mut t = Vec::new();
    for _ in 0..n {
        t.extend(std::iter::repeat_n(1.0, width));
        t.extend(std::iter::repeat_n(0.0, gap));
    }
    t
}
