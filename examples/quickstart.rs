//! Quickstart: bring up a MilBack link and exercise all four capabilities —
//! localization, orientation sensing, downlink and uplink — on one node.
//!
//! Run with: `cargo run --release --example quickstart`

use milback::core::{LinkSimulator, LocalizationPipeline, Scene, SystemConfig};
use milback::sigproc::random::GaussianSource;

fn main() {
    let config = SystemConfig::milback_default();
    // A node 3 m in front of the AP, board rotated 12° off the line of
    // sight, in a room with desks/shelves/walls.
    let scene = Scene::indoor(3.0, 12f64.to_radians());
    let mut rng = GaussianSource::new(42);

    println!("MilBack quickstart — node at 3 m, 12° orientation, indoor clutter\n");

    // ------------------------------------------------------------------
    // 1. Localization: five sawtooth chirps, background subtraction.
    // ------------------------------------------------------------------
    let pipeline = LocalizationPipeline::new(config.clone(), scene.clone()).unwrap();
    let fix = pipeline.localize(&mut rng).expect("localization");
    let gt = scene.ground_truth(0);
    println!(
        "[localize]  range {:.3} m (truth {:.3}),  angle {:+.2}° (truth {:+.2}°)",
        fix.range_m,
        gt.range_m,
        fix.angle_rad.to_degrees(),
        gt.azimuth_rad.to_degrees()
    );

    // ------------------------------------------------------------------
    // 2. Orientation, sensed independently at both ends.
    // ------------------------------------------------------------------
    let at_ap = pipeline.orient_at_ap(&mut rng).expect("AP orientation");
    let at_node = pipeline.orient_at_node(&mut rng).expect("node orientation");
    println!(
        "[orient]    AP sees {:+.2}°, node senses {:+.2}° (truth {:+.2}°)",
        at_ap.to_degrees(),
        at_node.to_degrees(),
        gt.incidence_rad.to_degrees()
    );

    // ------------------------------------------------------------------
    // 3. Two-way communication with OAQFM.
    // ------------------------------------------------------------------
    let sim = LinkSimulator::new(config, scene).unwrap();
    let carriers = sim.plan_carriers(Some(at_ap)).expect("carrier plan");
    println!("[carriers]  {carriers:?}");

    let down = sim
        .downlink(b"firmware-update-chunk-0042", &mut rng)
        .expect("downlink");
    println!(
        "[downlink]  {} bytes delivered, BER {:.1e}, SINR {:.1} dB",
        down.decoded.len(),
        down.ber,
        down.sinr_db()
    );
    assert_eq!(down.decoded, b"firmware-update-chunk-0042");

    let up = sim
        .uplink(b"sensor:23.7C;battery:ok", &mut rng)
        .expect("uplink");
    println!(
        "[uplink]    {} bytes recovered, BER {:.1e}, SNR {:.1} dB",
        up.decoded.len(),
        up.ber,
        up.snr_db
    );
    assert_eq!(up.decoded, b"sensor:23.7C;battery:ok");

    // ------------------------------------------------------------------
    // 4. What it costs the node.
    // ------------------------------------------------------------------
    use milback::node::{NodeActivity, NodePowerModel};
    let power = NodePowerModel::milback_default();
    println!(
        "[power]     downlink {:.1} mW, uplink {:.1} mW ({:.2} nJ/bit at 40 Mbps)",
        power.power_w(NodeActivity::Downlink) * 1e3,
        power.power_w(NodeActivity::Uplink) * 1e3,
        power.energy_per_bit_j(NodeActivity::Uplink, 40e6) * 1e9
    );

    println!("\nall four capabilities exercised — see examples/ for deeper scenarios");
}
