//! Adaptive-rate downlink: as the node moves away, the AP measures SINR,
//! picks the densest OAQFM constellation meeting a BER target (§9.4's
//! future-work extension), and adds FEC at the range edge — showing the
//! goodput staircase across the whole cell.
//!
//! Run with: `cargo run --release --example adaptive_rate`

use milback::core::dense::DenseOaqfm;
use milback::core::{coding::PayloadCodec, LinkSimulator, Scene, SystemConfig};

fn main() {
    println!("Adaptive dense-OAQFM downlink (18 Msym/s, raw-BER target 1e-3 over FEC)\n");
    println!(
        "{:>8} {:>10} {:>8} {:>12} {:>12} {:>14}",
        "dist(m)", "SINR(dB)", "levels", "rate(Mbps)", "FEC?", "goodput(Mbps)"
    );

    let codec = PayloadCodec::new(7);
    for i in 0..14 {
        let d = 0.5 + i as f64 * 0.85;
        let sim = LinkSimulator::new(
            SystemConfig::milback_default(),
            Scene::single_node(d, 12f64.to_radians()),
        )
        .unwrap();
        let carriers = sim.plan_carriers(None).unwrap();
        let (f_a, f_b) = match carriers {
            milback::ap::waveform::CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
            milback::ap::waveform::CarrierSet::SingleToneOok { f } => (f, f),
        };
        let psi = sim.scene.ground_truth(0).incidence_rad;
        let (ra, rb) = sim.downlink_sinr_breakdown(f_a, f_b, psi);
        let sinr = ra.sinr_db().min(rb.sinr_db());

        // Raw target 1e-3: the Hamming layer cleans that up to ~1e-7.
        let scheme = DenseOaqfm::densest_for(sinr, 1e-3, 16);
        let raw_rate = scheme.throughput_bps(18e6);
        // FEC always runs under the adaptive layer; count its rate cost
        // whenever the raw BER is high enough to need it.
        let use_fec = scheme.ber(sinr) > 1e-8;
        let goodput = if use_fec {
            raw_rate * codec.rate()
        } else {
            raw_rate
        };
        println!(
            "{d:>8.2} {sinr:>10.1} {:>8} {:>12.0} {:>12} {:>14.1}",
            scheme.levels,
            raw_rate / 1e6,
            if use_fec { "Hamming 4/7" } else { "-" },
            goodput / 1e6
        );
    }

    println!("\nthe staircase: dense constellations near the AP (interference-limited");
    println!("SINR ceiling ~20+ dB), plain OAQFM mid-cell, FEC-protected at the edge.");
}
