//! Figure-5 walkthrough: how the node senses its own orientation from a
//! triangular chirp with nothing but an envelope detector and a slow ADC.
//!
//! Prints the received-power traces (the Fig 5b waveforms) for three node
//! orientations and shows the peak-separation → orientation inversion step
//! by step.
//!
//! Run with: `cargo run --release --example orientation_demo`

use milback::node::OrientationEstimator;
use milback::rf::antenna::fsa::{FsaDesign, FsaPort};

fn main() {
    let est = OrientationEstimator::milback_default();
    let fsa = FsaDesign::milback_default();

    println!("Node-side orientation sensing (triangular chirp, §5.2b / Fig 5)\n");
    println!(
        "chirp: {:.1}–{:.1} GHz over {:.0} µs (apex at {:.1} µs), node ADC {} kS/s\n",
        est.chirp.start_hz / 1e9,
        est.chirp.end_hz() / 1e9,
        est.chirp.duration_s * 1e6,
        est.chirp.duration_s * 5e5,
        est.sample_rate_hz / 1e3
    );

    for orientation_deg in [-20.0f64, 0.0, 15.0] {
        let psi = orientation_deg.to_radians();
        let trace_a = est.ideal_power_trace(FsaPort::A, psi, &fsa, 1.0);

        println!("--- orientation {orientation_deg:+.0}° — port A normalized power trace ---");
        render_trace(&trace_a, est.sample_rate_hz);

        match est.estimate_port(FsaPort::A, &trace_a, &fsa) {
            Ok(p) => {
                println!(
                    "peaks at {:.1} µs and {:.1} µs → Δt = {:.1} µs → beam frequency {:.2} GHz → orientation {:+.2}°\n",
                    p.peak_up_s * 1e6,
                    p.peak_down_s * 1e6,
                    (p.peak_down_s - p.peak_up_s) * 1e6,
                    p.beam_freq_hz / 1e9,
                    p.incidence_rad.to_degrees()
                );
            }
            Err(e) => println!("estimation failed: {e}\n"),
        }
    }

    println!("note the V-shape property: the closer the beam frequency sits to the");
    println!("sweep apex, the closer the two peaks — a one-to-one map from peak");
    println!("separation to orientation that needs no frequency-selective hardware.");
}

/// Renders a power trace as a rough ASCII strip chart.
fn render_trace(trace: &[f64], fs: f64) {
    let peak = trace.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    let rows = 8;
    for row in (0..rows).rev() {
        let threshold = (row as f64 + 0.5) / rows as f64;
        let line: String = trace
            .iter()
            .map(|&v| if v / peak >= threshold { '█' } else { ' ' })
            .collect();
        println!("  |{line}|");
    }
    let n = trace.len();
    println!("  +{}+", "-".repeat(n));
    println!(
        "   0 µs{}{:.0} µs",
        " ".repeat(n.saturating_sub(11)),
        n as f64 / fs * 1e6
    );
}
