//! Property-based tests (proptest) over the stack's core invariants:
//! geometry inversions, modulation round-trips, framing robustness, FFT
//! algebra and link-budget monotonicity — with randomized inputs rather
//! than hand-picked cases.

use milback::ap::waveform::{CarrierSet, FmcwConfig, LinkDirection};
use milback::core::protocol::Packet;
use milback::core::{Scene, SystemConfig};
use milback::node::{OaqfmDemodulator, Thresholds};
use milback::rf::antenna::fsa::{DualPortFsa, FsaDesign, FsaPort};
use milback::rf::propagation;
use milback::sigproc::complex::Complex;
use milback::sigproc::fft::{fft, ifft};
use milback::sigproc::waveform::{bytes_to_symbols, ook_envelope, symbols_to_bytes, Chirp};
use proptest::prelude::*;

proptest! {
    /// FSA frequency↔angle mapping inverts across the whole band, both ports.
    #[test]
    fn fsa_mapping_inverts(f in 26.5e9f64..29.5e9f64) {
        let fsa = FsaDesign::milback_default();
        for port in [FsaPort::A, FsaPort::B] {
            let angle = fsa.beam_angle_rad(port, f).unwrap();
            let back = fsa.frequency_for_angle(port, angle).unwrap();
            prop_assert!((back - f).abs() < 1e3, "{f} → {angle} → {back}");
        }
    }

    /// OAQFM carriers exist and point both beams at the node for any
    /// orientation within the scan range (outside the OOK fallback zone).
    #[test]
    fn oaqfm_carriers_always_align(deg in -28.0f64..28.0f64) {
        prop_assume!(deg.abs() > 2.0);
        let fsa = DualPortFsa::milback_default();
        let psi = deg.to_radians();
        let (fa, fb) = fsa.oaqfm_carriers(psi).unwrap();
        let a = fsa.design.beam_angle_rad(FsaPort::A, fa).unwrap();
        let b = fsa.design.beam_angle_rad(FsaPort::B, fb).unwrap();
        prop_assert!((a - psi).abs() < 1e-9);
        prop_assert!((b - psi).abs() < 1e-9);
    }

    /// Triangular-chirp peak-separation inversion is exact over the band.
    #[test]
    fn triangular_inversion(f in 26.5e9f64..29.5e9f64) {
        let c = Chirp::triangular(26.5e9, 3e9, 45e-6);
        let (up, down) = c.triangular_crossings(f).unwrap();
        let rec = c.freq_from_peak_separation(down - up).unwrap();
        prop_assert!((rec - f).abs() < 1.0);
    }

    /// Beat-frequency ↔ range inversion for arbitrary slopes and ranges.
    #[test]
    fn beat_range_inversion(d in 0.1f64..30.0, bw in 0.5e9f64..4e9, dur in 5e-6f64..50e-6) {
        let slope = bw / dur;
        let beat = propagation::beat_frequency_hz(slope, d);
        prop_assert!((propagation::range_from_beat_m(slope, beat) - d).abs() < 1e-9);
    }

    /// AoA phase ↔ angle inversion within the unambiguous region.
    #[test]
    fn aoa_inversion(deg in -89.0f64..89.0) {
        let f = 28e9;
        let baseline = milback::sigproc::units::wavelength(f) / 2.0;
        let phi = propagation::aoa_phase_difference_rad(f, baseline, deg.to_radians());
        let rec = propagation::angle_from_phase_rad(f, baseline, phi).unwrap();
        prop_assert!((rec - deg.to_radians()).abs() < 1e-9);
    }

    /// Byte ↔ OAQFM-symbol packing round-trips for arbitrary payloads.
    #[test]
    fn symbol_packing_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let syms = bytes_to_symbols(&payload);
        prop_assert_eq!(symbols_to_bytes(&syms), payload);
    }

    /// The waveform-level demodulator recovers arbitrary payloads from
    /// clean traces at any oversampling factor.
    #[test]
    fn demodulator_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        sps in 4usize..32,
    ) {
        let syms = bytes_to_symbols(&payload);
        let la: Vec<f64> = syms.iter().map(|s| if s.tone_a { 0.01 } else { 0.0 }).collect();
        let lb: Vec<f64> = syms.iter().map(|s| if s.tone_b { 0.01 } else { 0.0 }).collect();
        let ta = ook_envelope(&la, sps);
        let tb = ook_envelope(&lb, sps);
        let demod = OaqfmDemodulator::new(sps);
        let out = demod
            .demodulate(&ta, &tb, Thresholds { a: 0.005, b: 0.005 })
            .unwrap();
        prop_assert_eq!(symbols_to_bytes(&out), payload);
    }

    /// Packet framing round-trips for arbitrary payloads and directions.
    #[test]
    fn frame_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..1024), up in any::<bool>()) {
        let p = if up { Packet::uplink(payload) } else { Packet::downlink(payload) };
        prop_assert_eq!(Packet::from_bytes(p.to_bytes()), Ok(p));
    }

    /// The frame parser never panics on arbitrary bytes, and anything it
    /// accepts re-serializes to the same bytes (parse-print identity).
    #[test]
    fn frame_parser_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let input = bytes::Bytes::from(bytes);
        if let Ok(packet) = Packet::from_bytes(input.clone()) {
            prop_assert_eq!(packet.to_bytes(), input);
        }
    }

    /// FFT ∘ IFFT is the identity for arbitrary-length complex signals.
    #[test]
    fn fft_roundtrip(re in proptest::collection::vec(-100.0f64..100.0, 1..200)) {
        let x: Vec<Complex> = re
            .iter()
            .enumerate()
            .map(|(i, &r)| Complex::new(r, (i as f64 * 0.7).sin()))
            .collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).norm() < 1e-6);
        }
    }

    /// Parseval: energy is preserved by the transform at any length.
    #[test]
    fn fft_parseval(re in proptest::collection::vec(-10.0f64..10.0, 2..128)) {
        let x: Vec<Complex> = re.iter().map(|&r| Complex::real(r)).collect();
        let y = fft(&x);
        let e_t: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_f: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((e_t - e_f).abs() <= 1e-8 * e_t.max(1.0));
    }

    /// Free-space path loss is monotone in both distance and frequency.
    #[test]
    fn fspl_monotone(d in 0.5f64..20.0, f in 24e9f64..40e9) {
        prop_assert!(propagation::fspl_db(f, d * 1.01) > propagation::fspl_db(f, d));
        prop_assert!(propagation::fspl_db(f * 1.01, d) > propagation::fspl_db(f, d));
    }

    /// Scene ground truth is self-consistent for arbitrary placements: the
    /// stored incidence equals the recomputed bearing difference.
    #[test]
    fn scene_geometry_consistent(
        r in 0.5f64..15.0,
        az in -1.2f64..1.2,
        orient in -0.5f64..0.5,
    ) {
        let scene = Scene {
            ap: milback::rf::channel::ApFrontend::milback_default(),
            nodes: vec![],
            clutter: vec![],
        }
        .with_node_at(r, az, orient);
        let gt = scene.ground_truth(0);
        prop_assert!((gt.range_m - r).abs() < 1e-9);
        prop_assert!((gt.azimuth_rad - az).abs() < 1e-9);
        prop_assert!((gt.incidence_rad + orient).abs() < 1e-9);
    }

    /// Carrier planning never returns out-of-band tones, for any
    /// orientation estimate it accepts.
    #[test]
    fn carrier_plan_in_band(deg in -40.0f64..40.0) {
        let sim = milback::core::LinkSimulator::new(
            SystemConfig::milback_default(),
            Scene::single_node(3.0, 0.0),
        )
        .unwrap();
        match sim.plan_carriers(Some(deg.to_radians())) {
            Ok(CarrierSet::TwoTone { f_a, f_b }) => {
                prop_assert!((26.5e9..=29.5e9).contains(&f_a));
                prop_assert!((26.5e9..=29.5e9).contains(&f_b));
            }
            Ok(CarrierSet::SingleToneOok { f }) => {
                prop_assert!((26.5e9..=29.5e9).contains(&f));
            }
            Err(_) => {
                // Out-of-scan orientations must error, not fabricate tones.
                prop_assert!(deg.abs() > 29.0, "errored inside scan range at {deg}°");
            }
        }
    }

    /// Packet airtime arithmetic: efficiency is in (0, 1) and increases
    /// with payload size.
    #[test]
    fn packet_efficiency_monotone(n in 1usize..4096) {
        let fmcw = FmcwConfig::milback_default();
        let small = Packet { direction: LinkDirection::Uplink, payload: vec![0; n] };
        let big = Packet { direction: LinkDirection::Uplink, payload: vec![0; n + 16] };
        let e1 = small.efficiency(&fmcw, 20e6);
        let e2 = big.efficiency(&fmcw, 20e6);
        prop_assert!(e1 > 0.0 && e1 < 1.0);
        prop_assert!(e2 > e1);
    }
}
