//! Regression pins for every figure/table anchor the paper states in
//! prose. If a refactor moves any of these, an evaluation claim silently
//! drifted — these tests make that loud instead.

use milback::ap::waveform::CarrierSet;
use milback::baselines::{
    capability_table, BackscatterSystem, MilBackSystem, Millimetro, MmTag, OmniScatter,
};
use milback::core::{LinkSimulator, Scene, SystemConfig};
use milback::node::{NodeActivity, NodePowerModel};
use milback::rf::antenna::fsa::{FsaDesign, FsaPort};
use milback::rf::antenna::Antenna;

fn sim_at(d: f64, rate_sym_hz: f64) -> LinkSimulator {
    let mut config = SystemConfig::milback_default();
    config.uplink_symbol_rate_hz = rate_sym_hz;
    LinkSimulator::new(config, Scene::single_node(d, 12f64.to_radians())).unwrap()
}

/// Fig 10: >10 dBi beams, ≥60° scan from 3 GHz, mirrored ports.
#[test]
fn fig10_fsa_anchors() {
    let fsa = FsaDesign::milback_default();
    assert!(fsa.scan_coverage_rad().to_degrees() >= 59.9);
    for i in 0..7 {
        let f = 26.5e9 + 0.5e9 * i as f64;
        let view = milback::rf::antenna::fsa::FrequencyScanningAntenna {
            design: fsa,
            port: FsaPort::A,
        };
        assert!(view.peak_gain_dbi(f) > 10.0, "beam at {f:.2e} below 10 dBi");
        let a = fsa.beam_angle_rad(FsaPort::A, f).unwrap();
        let b = fsa.beam_angle_rad(FsaPort::B, f).unwrap();
        assert!((a + b).abs() < 1e-9, "ports not mirrored at {f:.2e}");
    }
}

/// Fig 11: at 2 m the four OAQFM symbols are separable at the detectors
/// with >10 dB on/off contrast per port.
#[test]
fn fig11_symbol_contrast() {
    let sim = sim_at(2.0, 20e6);
    let carriers = sim.plan_carriers(None).unwrap();
    let (f_a, f_b) = match carriers {
        CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
        other => panic!("expected two tones at 12°, got {other:?}"),
    };
    let psi = sim.scene.ground_truth(0).incidence_rad;
    let (ra, rb) = sim.downlink_sinr_breakdown(f_a, f_b, psi);
    assert!(ra.sinr_db() > 10.0 && rb.sinr_db() > 10.0);
}

/// Fig 14 anchors: SINR ≥ ~12 dB at 10 m; saturates near ~23 dB close in;
/// BER mapping puts 12 dB at ≈1e-8.
#[test]
fn fig14_downlink_anchors() {
    let eval = |d: f64| {
        let sim = sim_at(d, 20e6);
        let carriers = sim.plan_carriers(None).unwrap();
        let (f_a, f_b) = match carriers {
            CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
            CarrierSet::SingleToneOok { f } => (f, f),
        };
        let psi = sim.scene.ground_truth(0).incidence_rad;
        let (ra, rb) = sim.downlink_sinr_breakdown(f_a, f_b, psi);
        ra.sinr_db().min(rb.sinr_db())
    };
    let s10 = eval(10.0);
    let s1 = eval(1.0);
    assert!((11.0..16.0).contains(&s10), "SINR@10m {s10:.1}");
    assert!((19.0..27.0).contains(&s1), "SINR@1m {s1:.1}");
    let ber = LinkSimulator::downlink_ber_from_sinr(12.0);
    assert!(ber < 5e-8 && ber > 1e-9, "BER at 12 dB: {ber:.1e}");
}

/// Fig 15 anchors: ≈11 dB at 8 m / 10 Mbps (BER ~2e-4), ≈10 dB at 6 m /
/// 40 Mbps (BER ~8e-4), 6 dB rate penalty, −12 dB per distance doubling.
#[test]
fn fig15_uplink_anchors() {
    let s10_8 = sim_at(8.0, 5e6).uplink_analytic_snr_db().unwrap();
    assert!((9.0..13.5).contains(&s10_8), "10M@8m {s10_8:.1}");
    let ber = LinkSimulator::uplink_ber_from_snr(s10_8);
    assert!((1e-5..2e-3).contains(&ber), "BER at 8 m {ber:.1e}");

    let s40_6 = sim_at(6.0, 20e6).uplink_analytic_snr_db().unwrap();
    assert!((8.5..12.5).contains(&s40_6), "40M@6m {s40_6:.1}");

    let penalty = sim_at(5.0, 5e6).uplink_analytic_snr_db().unwrap()
        - sim_at(5.0, 20e6).uplink_analytic_snr_db().unwrap();
    assert!((penalty - 6.02).abs() < 0.1, "rate penalty {penalty:.2}");

    let slope = sim_at(4.0, 5e6).uplink_analytic_snr_db().unwrap()
        - sim_at(8.0, 5e6).uplink_analytic_snr_db().unwrap();
    assert!((slope - 12.04).abs() < 0.2, "distance slope {slope:.2}");
}

/// §9.6 anchors: 18 mW / 32 mW node power; 0.5 / 0.8 nJ per bit; 3× better
/// than mmTag's 2.4 nJ/bit.
#[test]
fn power_anchors() {
    let m = NodePowerModel::milback_default();
    let dl = m.power_w(NodeActivity::Downlink);
    let ul = m.power_w(NodeActivity::Uplink);
    assert!((dl - 18e-3).abs() < 0.5e-3);
    assert!((ul - 32e-3).abs() < 0.5e-3);
    assert!((m.energy_per_bit_j(NodeActivity::Downlink, 36e6) - 0.5e-9).abs() < 0.05e-9);
    assert!((m.energy_per_bit_j(NodeActivity::Uplink, 40e6) - 0.8e-9).abs() < 0.05e-9);
    let mmtag = MmTag::published().uplink_energy_per_bit_j().unwrap();
    assert!((mmtag / m.energy_per_bit_j(NodeActivity::Uplink, 40e6) - 3.0).abs() < 0.1);
}

/// Table 1: the generated capability matrix matches the paper row-for-row.
#[test]
fn table1_matrix() {
    let mmtag = MmTag::published();
    let millimetro = Millimetro::published();
    let omni = OmniScatter::published();
    let milback = MilBackSystem::published();
    let rows = capability_table(&[&mmtag, &millimetro, &omni, &milback]);
    let expect = [
        // (uplink, localization, downlink, orientation)
        (true, false, false, false), // mmTag
        (false, true, false, false), // Millimetro
        (true, true, false, false),  // OmniScatter
        (true, true, true, true),    // MilBack
    ];
    for (row, &(u, l, d, o)) in rows.iter().zip(&expect) {
        assert_eq!(
            (row.uplink, row.localization, row.downlink, row.orientation),
            (u, l, d, o),
            "capability mismatch for {}",
            row.system
        );
    }
}

/// Rate ceilings stated in §9.4/§9.5: downlink ≤36 Mbps (detector-limited),
/// uplink ≤160 Mbps (switch-limited).
#[test]
fn rate_ceiling_anchors() {
    let config = SystemConfig::milback_default();
    // Paper operating points validate…
    assert!(config.validate().is_ok());
    // …the detector allows 36 Mbps (18 Msym/s) but not 100 Mbps.
    let mut too_fast = config.clone();
    too_fast.downlink_symbol_rate_hz = 50e6;
    too_fast.trace_rate_hz = 400e6;
    assert!(too_fast.validate().is_err());
    // …the switch allows 160 Mbps (80 Msym/s) but not 200 Msym/s.
    let mut ul_max = config.clone();
    ul_max.uplink_symbol_rate_hz = 80e6;
    assert!(ul_max.validate().is_ok());
    let mut ul_over = config;
    ul_over.uplink_symbol_rate_hz = 200e6;
    assert!(ul_over.validate().is_err());
}

/// Fig 12a envelope: the full pipeline keeps mean ranging error under the
/// paper's stated bounds (<5 cm at 5 m, <12 cm at 8 m).
#[test]
fn fig12a_envelope() {
    use milback::core::LocalizationPipeline;
    use milback::sigproc::random::GaussianSource;
    let mut rng = GaussianSource::new(0xA12);
    for &(d, bound) in &[(5.0, 0.05), (8.0, 0.12)] {
        let p = LocalizationPipeline::new(
            SystemConfig::milback_default(),
            Scene::indoor(d, 12f64.to_radians()),
        )
        .unwrap();
        let errs: Vec<f64> = (0..12)
            .filter_map(|_| p.localize(&mut rng).ok())
            .map(|f| (f.range_m - d).abs())
            .collect();
        let mean = milback::sigproc::stats::mean(&errs);
        assert!(mean < bound, "{d} m: mean {mean:.3} m > {bound}");
    }
}

/// The horn the AP uses really is a 20 dBi Mi-Wave-class horn.
#[test]
fn implementation_anchors() {
    let horn = milback::rf::antenna::Horn::miwave_20dbi();
    assert_eq!(horn.gain_dbi(28e9, 0.0), 20.0);
    let config = SystemConfig::milback_default();
    assert!((config.ap.tx.port_power_dbm() - 27.0).abs() < 0.3);
    assert_eq!(config.fmcw.field1_chirp_s, 45e-6);
    assert_eq!(config.fmcw.field2_chirp_s, 18e-6);
    assert_eq!(config.fmcw.bandwidth_hz, 3e9);
    assert_eq!(config.node.adc.sample_rate_hz, 1e6);
    assert_eq!(config.localization_toggle_hz, 10e3);
}
