//! Cross-system integration tests: the rate/range/energy frontier across
//! MilBack and the three baselines — the quantified story behind Table 1.

use milback::baselines::{BackscatterSystem, MilBackSystem, Millimetro, MmTag, OmniScatter};

/// At high data rates, only mmTag and MilBack exist at all; OmniScatter's
/// chirp-rate ceiling excludes it and Millimetro has no uplink.
#[test]
fn high_rate_uplink_field() {
    let mmtag = MmTag::published();
    let milback = MilBackSystem::published();
    let omni = OmniScatter::published();
    let millimetro = Millimetro::published();
    let rate = 40e6;
    assert!(mmtag.uplink_snr_db(4.0, rate).is_some());
    assert!(milback.uplink_snr_db(4.0, rate).is_some());
    assert!(omni.uplink_snr_db(4.0, rate).is_none());
    assert!(millimetro.uplink_snr_db(4.0, rate).is_none());
}

/// mmTag's PSK over a full-magnitude Van Atta out-budgets MilBack's OOK
/// swing at equal range — the price MilBack pays for having a signal port
/// (and thus a downlink) at all.
#[test]
fn mmtag_outbudgets_milback_uplink() {
    let mmtag = MmTag::published();
    let milback = MilBackSystem::published();
    for &d in &[2.0, 4.0, 8.0] {
        let a = mmtag.uplink_snr_db(d, 10e6).unwrap();
        let b = milback.uplink_snr_db(d, 10e6).unwrap();
        assert!(a > b, "at {d} m: mmTag {a:.1} dB vs MilBack {b:.1} dB");
        assert!(a - b < 25.0, "gap implausible: {:.1} dB", a - b);
    }
}

/// …but MilBack is the only one of the two with a downlink, and it wins
/// 3× on uplink energy per bit.
#[test]
fn milback_wins_downlink_and_energy() {
    let mmtag = MmTag::published();
    let milback = MilBackSystem::published();
    assert!(mmtag.downlink_sinr_db(3.0).is_none());
    assert!(milback.downlink_sinr_db(3.0).is_some());
    let ratio =
        mmtag.uplink_energy_per_bit_j().unwrap() / milback.uplink_energy_per_bit_j().unwrap();
    assert!((ratio - 3.0).abs() < 0.1, "energy ratio {ratio:.2}");
}

/// OmniScatter's sensitivity/rate trade: it reaches much further than
/// MilBack's 40 Mbps uplink, but only at kbps.
#[test]
fn omniscatter_reaches_further_at_kbps() {
    let omni = OmniScatter::published();
    let milback = MilBackSystem::published();
    // MilBack at 40 Mbps is marginal by ~9 m (SNR < 6 dB)…
    let mb = milback.uplink_snr_db(9.0, 40e6).unwrap();
    assert!(mb < 6.0, "MilBack at 9 m/40 Mbps: {mb:.1} dB");
    // …while OmniScatter still has usable SNR at 15 m — at 10 kbps.
    let os = omni.uplink_snr_db(15.0, 10e3).unwrap();
    assert!(os > 0.0, "OmniScatter at 15 m: {os:.1} dB");
}

/// Ranging-resolution ordering: MilBack's 3 GHz sweep beats Millimetro's
/// 250 MHz by >10×; both systems localize, mmTag does not.
#[test]
fn localization_field() {
    let millimetro = Millimetro::published();
    let milback = MilBackSystem::published();
    let mmtag = MmTag::published();
    assert!(mmtag.ranging_error_m(3.0).is_none());
    let mm_res = millimetro.range_resolution_m();
    let mb_res = mmwave_rf::propagation::range_resolution_m(3e9);
    assert!(mm_res / mb_res > 10.0, "{mm_res} vs {mb_res}");
    // Both produce finite expected errors at range.
    assert!(millimetro.ranging_error_m(10.0).unwrap() < 0.2);
    assert!(milback.ranging_error_m(8.0).unwrap() <= 0.125);
}

/// Only MilBack senses orientation — and that capability is exactly what
/// its OAQFM carrier selection depends on (the architectural loop that
/// gives the modulation its name).
#[test]
fn orientation_is_milbacks_alone() {
    let systems: [&dyn BackscatterSystem; 4] = [
        &MmTag::published(),
        &Millimetro::published(),
        &OmniScatter::published(),
        &MilBackSystem::published(),
    ];
    let with_orientation: Vec<&str> = systems
        .iter()
        .filter(|s| s.orientation_error_rad().is_some())
        .map(|s| s.name())
        .collect();
    assert_eq!(with_orientation, vec!["MilBack (this work)"]);
}

/// Millimetro's end-to-end ranging through the shared FMCW pipeline works
/// (its headline capability is reproducible with our substrate, not just
/// declared in a table).
#[test]
fn millimetro_ranges_through_pipeline() {
    use milback::sigproc::random::GaussianSource;
    let m = Millimetro::published();
    let mut rng = GaussianSource::new(9);
    let est = m.range_once(8.0, &[(3.0, 1e-4)], &mut rng).unwrap();
    assert!((est - 8.0).abs() < 0.3, "range {est:.2}");
}
