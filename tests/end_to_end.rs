//! Cross-crate integration tests: the full MilBack session flow — sense,
//! plan, communicate — through the public umbrella API.

use milback::ap::waveform::CarrierSet;
use milback::core::protocol::Packet;
use milback::core::{LinkSimulator, LocalizationPipeline, Scene, SystemConfig};
use milback::sigproc::random::GaussianSource;

/// The canonical session: localize the node, sense its orientation, plan
/// carriers from the *estimate* (not ground truth), then move data both
/// ways. This is the paper's §7 protocol exercised end to end.
#[test]
fn full_session_from_estimates() {
    let config = SystemConfig::milback_default();
    let scene = Scene::indoor(4.0, 15f64.to_radians());
    let mut rng = GaussianSource::new(0xE2E);

    let pipeline = LocalizationPipeline::new(config.clone(), scene.clone()).unwrap();
    let gt = scene.ground_truth(0);

    // Localize.
    let fix = pipeline.localize(&mut rng).expect("localization");
    assert!(
        (fix.range_m - gt.range_m).abs() < 0.15,
        "range {:.3}",
        fix.range_m
    );
    assert!(
        (fix.angle_rad - gt.azimuth_rad).abs().to_degrees() < 5.0,
        "angle {:.2}°",
        fix.angle_rad.to_degrees()
    );

    // Orientation at the AP, then carriers planned from that estimate.
    let orientation = pipeline.orient_at_ap(&mut rng).expect("orientation");
    assert!(
        (orientation - gt.incidence_rad).abs().to_degrees() < 4.0,
        "orientation {:.2}°",
        orientation.to_degrees()
    );

    let sim = LinkSimulator::new(config, scene).unwrap();
    let carriers = sim.plan_carriers(Some(orientation)).expect("carriers");
    assert!(matches!(carriers, CarrierSet::TwoTone { .. }));

    // Downlink and uplink payloads both arrive intact at 4 m.
    let down = sim.downlink(b"cfg:rate=40M;chan=2", &mut rng).unwrap();
    assert_eq!(down.decoded, b"cfg:rate=40M;chan=2");
    assert_eq!(down.ber, 0.0);
    let up = sim.uplink(b"ack+telemetry", &mut rng).unwrap();
    assert_eq!(up.decoded, b"ack+telemetry");
    assert_eq!(up.ber, 0.0);
}

/// A 3–4° orientation-estimate error must not break communication — the
/// §9.3 claim that beam width (~10°) absorbs estimation error.
#[test]
fn communication_tolerates_orientation_error() {
    let config = SystemConfig::milback_default();
    let scene = Scene::single_node(4.0, 15f64.to_radians());
    let sim = LinkSimulator::new(config, scene).unwrap();
    let true_psi = sim.scene.ground_truth(0).incidence_rad;
    let mut rng = GaussianSource::new(0xE2F);

    // Plan with a deliberately wrong estimate, 3.5° off.
    let wrong = true_psi + 3.5f64.to_radians();
    let carriers = sim.plan_carriers(Some(wrong)).unwrap();
    let (f_a, f_b) = match carriers {
        CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
        other => panic!("expected two tones, got {other:?}"),
    };
    let (ra, rb) = sim.downlink_sinr_breakdown(f_a, f_b, true_psi);
    let sinr = ra.sinr_db().min(rb.sinr_db());
    assert!(
        sinr > 12.0,
        "SINR with mis-planned carriers only {sinr:.1} dB"
    );

    let down = sim.downlink(b"still works", &mut rng).unwrap();
    assert_eq!(down.decoded, b"still works");
}

/// Uplink and downlink stay intact across the paper's full evaluated range.
#[test]
fn two_way_links_across_distances() {
    let mut rng = GaussianSource::new(0xD15);
    for &d in &[1.0, 2.0, 4.0, 6.0, 8.0] {
        let sim = LinkSimulator::new(
            SystemConfig::milback_default(),
            Scene::single_node(d, 12f64.to_radians()),
        )
        .unwrap();
        let payload: Vec<u8> = rng.bytes(128);
        let down = sim.downlink(&payload, &mut rng).unwrap();
        assert_eq!(down.decoded, payload, "downlink failed at {d} m");
        let up = sim.uplink(&payload, &mut rng).unwrap();
        // At 8 m / 40 Mbps percent-level BER is expected (the paper's own
        // Fig 15b annotation at that point is ~3e-3, and its 40 Mbps curve
        // stops at 8 m); below that, payloads should be clean.
        if d < 7.0 {
            assert_eq!(up.decoded, payload, "uplink failed at {d} m");
        } else {
            assert!(up.ber < 5e-2, "uplink BER {:.2e} at {d} m", up.ber);
        }
    }
}

/// The localization degrades monotonically (on average) with distance but
/// stays inside the paper's error envelope.
#[test]
fn localization_error_envelope() {
    let mut rng = GaussianSource::new(0x10C);
    for &(d, bound) in &[(2.0, 0.05), (5.0, 0.05), (8.0, 0.12)] {
        let pipeline = LocalizationPipeline::new(
            SystemConfig::milback_default(),
            Scene::indoor(d, 12f64.to_radians()),
        )
        .unwrap();
        let errs: Vec<f64> = (0..10)
            .filter_map(|_| pipeline.localize(&mut rng).ok())
            .map(|f| (f.range_m - d).abs())
            .collect();
        assert!(errs.len() >= 8, "too many failures at {d} m");
        let mean = milback::sigproc::stats::mean(&errs);
        assert!(
            mean < bound,
            "mean error {mean:.3} m at {d} m exceeds paper bound {bound}"
        );
    }
}

/// Both orientation estimators agree with each other (they measure the
/// same physical quantity through entirely different signal paths).
#[test]
fn orientation_estimators_agree() {
    let mut rng = GaussianSource::new(0x0A6);
    for &deg in &[-15.0f64, -5.0, 10.0] {
        let pipeline = LocalizationPipeline::new(
            SystemConfig::milback_default(),
            Scene::indoor(2.0, deg.to_radians()),
        )
        .unwrap();
        let ap_est = pipeline.orient_at_ap(&mut rng).unwrap();
        let node_est = pipeline.orient_at_node(&mut rng).unwrap();
        assert!(
            (ap_est - node_est).abs().to_degrees() < 4.0,
            "estimators disagree at {deg}°: AP {:.1}° vs node {:.1}°",
            ap_est.to_degrees(),
            node_est.to_degrees()
        );
    }
}

/// Protocol framing composes with link transport: serialize a packet, ship
/// its bytes over the downlink, parse at the node.
#[test]
fn framed_packet_over_downlink() {
    let sim = LinkSimulator::new(
        SystemConfig::milback_default(),
        Scene::single_node(3.0, 12f64.to_radians()),
    )
    .unwrap();
    let mut rng = GaussianSource::new(0xF4A);
    let packet = Packet::downlink(b"application payload with framing".to_vec());
    let wire = packet.to_bytes();
    let outcome = sim.downlink(&wire, &mut rng).unwrap();
    let parsed = Packet::from_bytes(outcome.decoded.into()).expect("frame survives the link");
    assert_eq!(parsed, packet);
}

/// Determinism: identical seeds give identical sessions (the property the
/// whole experiment harness rests on).
#[test]
fn sessions_are_deterministic() {
    let run = || {
        let pipeline = LocalizationPipeline::new(
            SystemConfig::milback_default(),
            Scene::indoor(5.0, 10f64.to_radians()),
        )
        .unwrap();
        let mut rng = GaussianSource::new(777);
        let fix = pipeline.localize(&mut rng).unwrap();
        let orient = pipeline.orient_at_ap(&mut rng).unwrap();
        (fix.range_m, fix.angle_rad, orient)
    };
    assert_eq!(run(), run());
}

/// The OOK fallback engages and still carries data at normal incidence.
#[test]
fn normal_incidence_ook_path() {
    let sim = LinkSimulator::new(
        SystemConfig::milback_default(),
        Scene::single_node(3.0, 0.0),
    )
    .unwrap();
    let carriers = sim.plan_carriers(None).unwrap();
    assert!(matches!(carriers, CarrierSet::SingleToneOok { .. }));
    // The downlink switches to 1-bit-per-symbol OOK on the shared carrier
    // and still delivers the payload intact (§6.2).
    let mut rng = GaussianSource::new(0x00C);
    let out = sim.downlink(b"normal-incidence payload", &mut rng).unwrap();
    assert_eq!(out.decoded, b"normal-incidence payload");
    assert!(matches!(out.carriers, CarrierSet::SingleToneOok { .. }));
}
